(** The [dco3d serve] daemon: a persistent process that loads a trained
    {!Dco3d_core.Predictor.t} once and answers {!Protocol} requests over
    a Unix-domain or TCP socket.

    Internally the server is a small systhread pipeline:

    {ul
    {- an {b accept loop} that hands each connection to its own handler
       thread (blocking socket IO releases the OCaml domain lock, so
       handlers are cheap);}
    {- a {b micro-batcher} that drains the bounded predict queue,
       lingers briefly ({!config.batch_linger_ms}) to let concurrent
       requests pile up, and runs one
       {!Dco3d_core.Predictor.predict_batch} forward pass for the whole
       batch — bit-identical to per-request [predict], so batching is
       invisible to clients;}
    {- a {b flow worker} that runs submitted flow jobs one at a time;
       clients poll them by job id;}
    {- a {b corpus worker} that runs the third async request class —
       corpus PPA cells and corpus dataset builds — deduped in-flight
       by {!Protocol.corpus_key} and cached on disk through
       {!Dco3d_corpus.Corpus.Store} next to the route cache, so a
       whole fleet shares one evaluated corpus.}}

    Results are cached in an {!Lru} keyed by
    [Protocol.predict_key ^ ":" ^ Predictor.fingerprint], so a repeated
    request is answered from memory without touching the network —
    and a model swap can never serve stale maps.

    Backpressure: once {!config.queue_capacity} predict requests are
    queued, further ones are refused immediately with
    [Overloaded { queue_len; capacity }] instead of queuing unboundedly.
    A request whose [timeout_ms] elapses while it is still queued is
    answered [Timed_out] and never runs.

    Observability: [serve/queue_depth] gauge, [serve/batch_size]
    histogram, [serve/cache_hit]/[serve/cache_miss]/[serve/overloaded]/
    [serve/timeout]/[serve/epipe]/[serve/corpus_dedup] counters, and
    [serve/batch] / [serve/flow_job] / [serve/corpus_job] spans, all
    through {!Dco3d_obs.Obs}. *)

type address =
  | Unix_path of string  (** Unix-domain socket at this filesystem path *)
  | Tcp of string * int  (** host, port; port [0] picks a free port *)

type config = {
  address : address;
  queue_capacity : int;  (** predict-queue high-water mark (default 64) *)
  max_batch : int;  (** most requests coalesced per forward pass (default 8) *)
  batch_linger_ms : float;
      (** how long the batcher waits for companions once one request is
          pending (default 2.0) *)
  cache_capacity : int;  (** LRU result-cache entries (default 128) *)
  numeric : [ `F32 | `I8 ];
      (** inference numeric path (default [`F32]).  [`I8] serves the
          memoized int8 compilation of the model; the cache key's
          fingerprint component is numeric-path-specific, so int8 and
          float results can never alias.  The compilation is forced at
          {!start}, so the first request pays no quantization latency. *)
  spill_dir : string option;
      (** when set, evicted LRU entries are persisted here ({!Spill})
          and cache misses read through the spill before running the
          forward pass — restarts keep the hot set (default [None]) *)
  route_cache_dir : string option;
      (** when set, the async flow jobs route through a
          content-addressed {!Dco3d_route.Route_cache} rooted here;
          shards given the same directory share one routed corpus
          (default [None]) *)
  corpus_dir : string option;
      (** PPA row store for corpus jobs ({!Dco3d_corpus.Corpus.Store}).
          Defaults to [<route_cache_dir>/corpus] when a route cache is
          configured, else no persistence (default [None]) *)
  shard_id : int;
      (** reported in [Hello_reply] and stats; 0 for a standalone
          daemon, the slot index for balancer-managed shards *)
}

val default_config : address -> config

val numeric_name : [ `F32 | `I8 ] -> string
(** ["f32"] / ["i8"] — the wire spelling used in hello handshakes. *)

val bind_listen : address -> Unix.file_descr * address
(** Bind + listen on an address, unlinking a stale Unix-domain path
    first; returns the fd and the resolved address (TCP port 0 becomes
    the port the kernel picked).  Shared with the {!Balance} front. *)

type t

val start : config -> Dco3d_core.Predictor.t -> t
(** Bind, listen, and spawn the serving threads.  Returns once the
    socket is accepting connections.  Ignores SIGPIPE for the process
    so that a client vanishing mid-reply surfaces as a per-connection
    EPIPE (counted in [serve/epipe]) instead of killing the daemon.
    @raise Unix.Unix_error if the address cannot be bound. *)

val start_detached : config -> Dco3d_core.Predictor.t -> t
(** Like {!start} but binds no listening socket: the batcher, flow
    worker, cache, and spill all run, and connections arrive only via
    {!adopt_connection}.  This is the shard-side server behind the
    fd-passing balancer. *)

val adopt_connection : t -> ?initial:string -> Unix.file_descr -> bool
(** Take ownership of an already-connected socket (e.g. one received
    over [SCM_RIGHTS]) and serve it on its own handler thread.
    [initial], if given, is a raw frame payload the balancer consumed
    to route the connection; it is replayed as the first request.
    Returns [false] (closing the fd) if the server is stopping. *)

val bound_addr : t -> address
(** The address actually bound — resolves [Tcp (host, 0)] to the port
    the kernel picked.  For a detached server, echoes the config. *)

val fingerprint : t -> string
(** The numeric-aware model fingerprint this server computes cache keys
    with (forced at start). *)

val numeric : t -> [ `F32 | `I8 ]

val request_stop : t -> unit
(** Begin a graceful shutdown: stop accepting, nudge every serving
    thread.  Idempotent; safe to call from a signal handler's
    continuation. *)

val wait : t -> unit
(** Block until shutdown completes: live connections are shut down,
    the queued predict requests are drained (each gets its reply or
    [Timed_out]), queued flow jobs finish, and the socket is closed
    (and unlinked, for a Unix-domain path). *)

val stop : t -> unit
(** [request_stop] then [wait]. *)

val stats : t -> (string * float) list
(** The same snapshot served to [Stats] requests: queue depth, cache
    occupancy and hit/miss totals, batch counts, job counts, uptime. *)
