(** Control-channel messaging over Unix-domain stream sockets with
    [SCM_RIGHTS] file-descriptor passing (C stubs; OCaml 5.1's [Unix]
    has no sendmsg/recvmsg binding).

    A control message is a tag byte — carrying at most one descriptor
    as ancillary data — followed by a u32_be length and that many
    payload bytes.  The balancer uses it to hand accepted client
    sockets to shard daemons without proxying any frames. *)

val send_ctl :
  Unix.file_descr -> ?fd:Unix.file_descr -> tag:char -> string -> unit
(** [send_ctl sock ?fd ~tag payload] sends one control message.  When
    [fd] is given, the descriptor is duplicated into the receiving
    process by the kernel; the sender still owns (and should close)
    its copy.  Raises [Unix.Unix_error] on transport failure. *)

val recv_ctl :
  Unix.file_descr -> (char * string * Unix.file_descr option) option
(** [recv_ctl sock] blocks for one control message.  Returns [None] on
    clean EOF (peer closed), [Some (tag, payload, fd)] otherwise.  The
    returned descriptor, if any, is owned by the caller.  Raises
    [Protocol.Protocol_error] on a malformed message (any received
    descriptor is closed first). *)
