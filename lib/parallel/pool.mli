(** Shared-memory data parallelism on OCaml 5 domains.

    Every hot kernel in the reproduction (tensor contractions,
    convolutions, RUDY accumulation, dataset construction) funnels its
    loops through this module.  A single lazily-created pool of worker
    domains serves the whole process; its size comes from the
    [DCO3D_JOBS] environment variable (default
    [Domain.recommended_domain_count ()], and [1] selects an exact
    in-caller sequential execution with no pool at all).

    {b Determinism contract.}  Results never depend on the job count:

    - loop bodies handed to {!parallel_for} / {!map_array} must write
      disjoint locations per index, so any schedule commutes;
    - {!parallel_for_reduce} evaluates one partial result per chunk and
      combines the partials {e in ascending chunk order} on the calling
      domain, and the chunk decomposition depends only on the range (and
      the optional [chunk] argument), never on the number of workers.

    Under that contract, [DCO3D_JOBS=1] and [DCO3D_JOBS=64] produce
    bit-identical floating-point results — the property the
    [make bench-deterministic] harness enforces.

    Nested calls are safe: a parallel region entered from inside a
    worker task runs sequentially in that worker instead of deadlocking
    on the pool. *)

val jobs : unit -> int
(** Currently configured job count (workers + the calling domain).
    Reads [DCO3D_JOBS] unless {!set_jobs} has overridden it.

    @raise Invalid_argument if [DCO3D_JOBS] is set but is not a
    positive integer. *)

val set_jobs : int -> unit
(** [set_jobs n] reconfigures the runtime to [n] jobs, shutting down any
    existing pool (its queued work is drained first).  Used by the bench
    harness to time the same kernel sequentially and in parallel within
    one process, and by tests to force a real pool on small machines.
    @raise Invalid_argument if [n < 1]. *)

val parallel_for : ?chunk:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for lo hi f] runs [f i] for every [lo <= i < hi].  Indices
    are distributed in contiguous chunks of [chunk] (default: the range
    is cut into at most 256 chunks).  [f] must only write locations that
    no other index writes. *)

val for_chunks : ?chunk:int -> int -> int -> (int -> int -> unit) -> unit
(** [for_chunks lo hi f] is the chunk-granular primitive underneath
    {!parallel_for}: [f clo chi] is called once per chunk with
    [lo <= clo < chi <= hi], the chunks partitioning [\[lo, hi)] in
    contiguous ascending sub-ranges.  Useful when per-chunk setup (a
    scratch buffer, a cache tile) is worth amortizing. *)

val parallel_for_reduce :
  ?chunk:int ->
  init:'acc ->
  combine:('acc -> 'a -> 'acc) ->
  int ->
  int ->
  (int -> int -> 'a) ->
  'acc
(** [parallel_for_reduce ~init ~combine lo hi body] evaluates
    [body clo chi] on every chunk of [\[lo, hi)] and folds the partial
    results as [combine (... (combine init r0) ...) r_last] in ascending
    chunk order on the calling domain.  [combine] may mutate and return
    its accumulator.  The chunk decomposition is a function of the range
    and [chunk] only, so the float reduction tree — hence the result
    bits — is independent of the job count.  Returns [init] on an empty
    range. *)

val tabulate : ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [tabulate n f] is [Array.init n f] with the calls distributed over
    the pool; element [i] of the result is [f i].  [f] must be safe to
    call from any domain in any order. *)

val map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [Array.map f a] over the pool. *)
