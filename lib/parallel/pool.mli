(** Shared-memory data parallelism on OCaml 5 domains.

    Every hot kernel in the reproduction (tensor contractions,
    convolutions, RUDY accumulation, dataset construction) funnels its
    loops through this module.  A single lazily-created pool of
    persistent worker domains serves the whole process.  Workers poll a
    published region descriptor — an atomic chunk counter with
    completion and failure cells — spinning briefly before blocking, so
    dispatching a region costs two atomic writes on the caller and no
    per-chunk closure allocations (the v1 queue-of-closures design paid
    a lock/enqueue/wakeup round trip per helper per region).

    {b Sizing.}  The requested job count comes from the [DCO3D_JOBS]
    environment variable (default [Domain.recommended_domain_count ()])
    or {!set_jobs}.  The pool {e clamps} the domains it actually runs to
    the hardware ([Domain.recommended_domain_count ()]): requesting 8
    jobs on a 1-core container runs sequentially instead of timeslicing
    one core between competing domains — the failure mode behind PR 1's
    0.3x "speedups".  [DCO3D_JOBS=1] selects an exact in-caller
    sequential execution with no pool at all.

    {b One level of parallelism.}  A region opened by a domain that is
    already executing region chunks — a worker, or the caller inside its
    own region — runs inline.  So [Dataset.build] parallelizes across
    samples while every kernel inside a sample runs sequentially; a
    standalone kernel call parallelizes internally.  Never both.

    {b Determinism contract.}  Results never depend on the job count:

    - loop bodies handed to {!parallel_for} / {!map_array} must write
      disjoint locations per index, so any schedule commutes;
    - {!parallel_for_reduce} evaluates one partial result per chunk and
      combines the partials {e in ascending chunk order} on the calling
      domain, and the chunk decomposition depends only on the range (and
      the optional [chunk] argument), never on the number of workers.

    Under that contract, [DCO3D_JOBS=1] and [DCO3D_JOBS=64] produce
    bit-identical floating-point results — the property the
    [make bench-deterministic] harness enforces.

    {b Failure.}  The first exception a chunk raises aborts the region:
    unclaimed chunks are skipped and the exception is re-raised (with
    its backtrace) on the calling domain.  Worker domains never swallow
    exceptions and never die. *)

val jobs : unit -> int
(** Requested job count (from [DCO3D_JOBS] or {!set_jobs}).  This is
    the caller's intent; see {!effective_jobs} for what will run.

    @raise Invalid_argument if [DCO3D_JOBS] is set but is not a
    positive integer. *)

val effective_jobs : unit -> int
(** Domains that will actually compute a parallel region:
    [min (jobs ()) (Domain.recommended_domain_count ())], unless the
    clamp was bypassed with [set_jobs ~exact:true].  [1] means regions
    run inline in the caller. *)

val set_jobs : ?exact:bool -> int -> unit
(** [set_jobs n] reconfigures the runtime to [n] requested jobs,
    shutting down any existing pool first.  Used by the bench harness to
    time the same kernel sequentially and in parallel within one
    process.  [~exact:true] disables the hardware clamp so that [n]
    domains really run — tests use it to exercise true cross-domain
    schedules even on single-core CI hosts.
    @raise Invalid_argument if [n < 1]. *)

val parallel_for : ?chunk:int -> int -> int -> (int -> unit) -> unit
(** [parallel_for lo hi f] runs [f i] for every [lo <= i < hi].  Indices
    are distributed in contiguous chunks of [chunk] (default: the range
    is cut into at most 256 chunks).  [f] must only write locations that
    no other index writes. *)

val for_chunks : ?chunk:int -> int -> int -> (int -> int -> unit) -> unit
(** [for_chunks lo hi f] is the chunk-granular primitive underneath
    {!parallel_for}: [f clo chi] is called once per chunk with
    [lo <= clo < chi <= hi], the chunks partitioning [\[lo, hi)] in
    contiguous ascending sub-ranges.  Useful when per-chunk setup (a
    scratch buffer, a cache tile) is worth amortizing. *)

val parallel_for_reduce :
  ?chunk:int ->
  init:'acc ->
  combine:('acc -> 'a -> 'acc) ->
  int ->
  int ->
  (int -> int -> 'a) ->
  'acc
(** [parallel_for_reduce ~init ~combine lo hi body] evaluates
    [body clo chi] on every chunk of [\[lo, hi)] and folds the partial
    results as [combine (... (combine init r0) ...) r_last] in ascending
    chunk order on the calling domain.  [combine] may mutate and return
    its accumulator.  The chunk decomposition is a function of the range
    and [chunk] only, so the float reduction tree — hence the result
    bits — is independent of the job count.  Returns [init] on an empty
    range. *)

val tabulate : ?chunk:int -> int -> (int -> 'a) -> 'a array
(** [tabulate n f] is [Array.init n f] with the calls distributed over
    the pool; element [i] of the result is [f i].  [f] must be safe to
    call from any domain in any order. *)

val map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f a] is [Array.map f a] over the pool. *)

(** {1 Per-domain scratch}

    Loop bodies that need mutable workspace (an A* search state, a
    marking array, a packing buffer) reuse it across the chunks a
    domain claims instead of allocating per index.  Because which
    domain runs which chunk is scheduling-dependent, a scratch value
    must never carry information {e into} a use that affects the
    result: bodies must fully (re)initialize — or generation-stamp —
    whatever they read.  Under that rule, results stay independent of
    the job count. *)

type 's scratch_pool

val scratch_pool : (unit -> 's) -> 's scratch_pool
(** [scratch_pool create] is an empty pool of reusable scratch values;
    [create] is called lazily, at most once per domain concurrently
    inside {!with_scratch}. *)

val with_scratch : 's scratch_pool -> ('s -> 'a) -> 'a
(** [with_scratch sp f] borrows a scratch value (creating one if none
    is free), applies [f], and returns it to the pool — also on
    exception.  At most [effective_jobs ()] values are ever live when
    called from a parallel region's chunks. *)
