(* Work-sharing domain pool.

   One process-wide pool of [jobs - 1] worker domains is created lazily
   on first use; the calling domain always participates in its own
   regions, so [jobs] domains compute in total.  A parallel region hands
   workers a shared atomic chunk counter rather than one queue entry per
   chunk: each helper (and the caller) repeatedly claims the next chunk
   index until the range is exhausted.  Which domain runs which chunk is
   scheduling-dependent; *what* each chunk computes, and the order in
   which chunk results are combined, is not — that is the determinism
   contract documented in the interface. *)

type pool = {
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  size : int; (* total jobs, including the calling domain *)
}

(* Set while a domain is executing pool tasks; nested regions detect it
   and run inline instead of re-entering the pool. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let worker_loop pool =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.stop do
      Condition.wait pool.cond pool.mutex
    done;
    match Queue.take_opt pool.queue with
    | Some task ->
        Mutex.unlock pool.mutex;
        (* regions catch their own exceptions; this is a backstop so a
           misbehaving task can never kill a worker *)
        (try task () with _ -> ());
        loop ()
    | None -> Mutex.unlock pool.mutex (* stop requested and queue drained *)
  in
  loop ()

let env_jobs () =
  match Sys.getenv_opt "DCO3D_JOBS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "DCO3D_JOBS: expected a positive integer, got %S" s))

(* Guards [requested] and [current]. *)
let state_mutex = Mutex.create ()
let requested : int option ref = ref None
let current : pool option ref = ref None

let configured_jobs () =
  match !requested with Some n -> n | None -> env_jobs ()

let jobs () = configured_jobs ()

let make_pool size =
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
      size;
    }
  in
  pool.workers <-
    Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: need at least one job";
  Mutex.lock state_mutex;
  let old = !current in
  current := None;
  requested := Some n;
  Mutex.unlock state_mutex;
  Option.iter shutdown old

let get_pool () =
  Mutex.lock state_mutex;
  let pool =
    match !current with
    | Some p -> p
    | None ->
        let p = make_pool (configured_jobs ()) in
        current := Some p;
        p
  in
  Mutex.unlock state_mutex;
  pool

let submit pool task =
  Mutex.lock pool.mutex;
  Queue.add task pool.queue;
  Condition.signal pool.cond;
  Mutex.unlock pool.mutex

(* Run [run_chunk c] for every [0 <= c < n_chunks], on the pool when one
   is available and the region is not nested inside a worker. *)
let run_region n_chunks run_chunk =
  if n_chunks > 0 then
    if n_chunks = 1 || Domain.DLS.get in_worker || configured_jobs () = 1 then
      for c = 0 to n_chunks - 1 do
        run_chunk c
      done
    else begin
      let pool = get_pool () in
      if pool.size = 1 then
        for c = 0 to n_chunks - 1 do
          run_chunk c
        done
      else begin
        let next = Atomic.make 0 in
        let failed = Atomic.make None in
        let work () =
          let continue = ref true in
          while !continue do
            let c = Atomic.fetch_and_add next 1 in
            if c >= n_chunks || Atomic.get failed <> None then continue := false
            else
              try run_chunk c
              with e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failed None (Some (e, bt)))
          done
        in
        let helpers = min (pool.size - 1) (n_chunks - 1) in
        let pending = Atomic.make helpers in
        let done_mutex = Mutex.create () in
        let done_cond = Condition.create () in
        for _ = 1 to helpers do
          submit pool (fun () ->
              work ();
              if Atomic.fetch_and_add pending (-1) = 1 then begin
                Mutex.lock done_mutex;
                Condition.broadcast done_cond;
                Mutex.unlock done_mutex
              end)
        done;
        work ();
        Mutex.lock done_mutex;
        while Atomic.get pending > 0 do
          Condition.wait done_cond done_mutex
        done;
        Mutex.unlock done_mutex;
        match Atomic.get failed with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ()
      end
    end

(* At most 256 chunks by default.  The decomposition is a function of
   the range alone — never of the job count — so chunk-indexed results
   (and reductions over them) are stable across DCO3D_JOBS values. *)
let resolve_chunk chunk lo hi =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Pool: chunk must be positive"
  | None -> max 1 ((hi - lo + 255) / 256)

let for_chunks ?chunk lo hi f =
  if hi > lo then begin
    let chunk = resolve_chunk chunk lo hi in
    let n_chunks = (hi - lo + chunk - 1) / chunk in
    run_region n_chunks (fun c ->
        let clo = lo + (c * chunk) in
        f clo (min hi (clo + chunk)))
  end

let parallel_for ?chunk lo hi f =
  for_chunks ?chunk lo hi (fun clo chi ->
      for i = clo to chi - 1 do
        f i
      done)

let parallel_for_reduce ?chunk ~init ~combine lo hi body =
  if hi <= lo then init
  else begin
    let chunk = resolve_chunk chunk lo hi in
    let n_chunks = (hi - lo + chunk - 1) / chunk in
    let partials = Array.make n_chunks None in
    run_region n_chunks (fun c ->
        let clo = lo + (c * chunk) in
        partials.(c) <- Some (body clo (min hi (clo + chunk))));
    Array.fold_left
      (fun acc p ->
        match p with Some v -> combine acc v | None -> assert false)
      init partials
  end

let tabulate ?chunk n f =
  if n < 0 then invalid_arg "Pool.tabulate: negative length";
  if n = 0 then [||]
  else
    (* per-chunk sub-arrays concatenated in chunk order, so no dummy
       element is ever needed *)
    parallel_for_reduce ?chunk ~init:[]
      ~combine:(fun acc part -> part :: acc)
      0 n
      (fun lo hi -> Array.init (hi - lo) (fun i -> f (lo + i)))
    |> List.rev |> Array.concat

let map_array ?chunk f a = tabulate ?chunk (Array.length a) (fun i -> f a.(i))
