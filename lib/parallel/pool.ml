(* Work-sharing domain pool, v2.

   v1 dispatched every parallel region by pushing one closure per helper
   onto a mutex/condvar queue.  Two consequences measured in PR 1's
   BENCH_kernels.json sank it: (a) each region paid a full
   lock/enqueue/wakeup round trip per helper, which dominated small
   regions, and (b) a region published while all workers were busy
   (Dataset.build's per-sample region publishing nested kernel regions)
   left the caller *blocked* on queued helper closures that could not
   run until a whole outer task finished — serializing the pipeline.

   v2 keeps the workers persistent and replaces the queue with a single
   published region descriptor: an atomic chunk counter plus completion
   and failure cells.  Workers spin briefly on an epoch counter
   (adaptive spin, then block on a condvar), and on wakeup claim chunks
   straight from the descriptor.  The caller always participates and
   never depends on any worker showing up: completion is "all chunks
   claimed and no executor still inside one", so a busy or sleeping
   worker costs nothing.

   Two policies fall out of the PR 1 postmortem:

   - {b No oversubscription.}  The pool never runs more domains than
     the hardware offers ([Domain.recommended_domain_count ()]); asking
     for more (env [DCO3D_JOBS] or {!set_jobs}) degrades gracefully to
     the sequential path instead of timeslicing one core between
     spinning domains.  [set_jobs ~exact:true] bypasses the clamp so
     tests can exercise real cross-domain schedules anywhere.
   - {b No nested parallelism.}  While a domain (worker *or* caller)
     executes a region, any region it opens runs inline.  Parallelism
     is spent at the outermost level (e.g. across dataset samples), and
     the kernels inside run sequentially — one level, never both.

   Which domain runs which chunk is scheduling-dependent; *what* each
   chunk computes, and the order in which chunk results are combined,
   is not — that is the determinism contract documented in the
   interface. *)

module Obs = Dco3d_obs.Obs

type region = {
  n_chunks : int;
  task : int -> unit;
  next : int Atomic.t;  (* next unclaimed chunk index *)
  running : int Atomic.t;  (* executors currently inside the claim loop *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
      (* first exception raised by any chunk; re-raised on the caller *)
}

type pool = {
  slot : region option Atomic.t;  (* currently published region *)
  epoch : int Atomic.t;  (* bumped on publish; workers wait on it *)
  sleepers : int Atomic.t;  (* workers blocked on [cond] *)
  mutex : Mutex.t;
  cond : Condition.t;
  stop : bool Atomic.t;
  caller_lock : Mutex.t;  (* one region in flight at a time *)
  mutable workers : unit Domain.t array;
  size : int;  (* total computing domains, including the caller *)
}

(* Set while a domain is executing region chunks (worker or caller);
   regions opened underneath run inline instead of re-entering the
   pool. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

(* Iterations of [Domain.cpu_relax] a worker spins on the epoch before
   blocking.  Regions issued back-to-back (a training step, the RUDY
   chunk stream) are picked up without a syscall; an idle pool parks
   its workers on the condvar within ~100 us. *)
let spin_count = 5_000

(* Claim-and-run loop shared by workers and the caller.  The [running]
   increment happens before the first claim, so an observer that sees
   [running = 0] *and* every chunk claimed knows no chunk body can
   still be executing (a late executor's first claim returns >= n).
   Chunks claimed after a failure are skipped: the region is aborting
   and the caller will re-raise. *)
let participate r =
  Atomic.incr r.running;
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add r.next 1 in
    if c >= r.n_chunks || Atomic.get r.failed <> None then continue := false
    else
      try r.task c
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set r.failed None (Some (e, bt)))
  done;
  Atomic.decr r.running

let worker_loop pool =
  Domain.DLS.set in_worker true;
  let last = ref (Atomic.get pool.epoch) in
  let stopped () = Atomic.get pool.stop in
  while not (stopped ()) do
    (* adaptive spin: catch a new epoch without a syscall *)
    let spins = ref 0 in
    while Atomic.get pool.epoch = !last && (not (stopped ())) && !spins < spin_count do
      incr spins;
      Domain.cpu_relax ()
    done;
    if Atomic.get pool.epoch = !last && not (stopped ()) then begin
      Mutex.lock pool.mutex;
      Atomic.incr pool.sleepers;
      while Atomic.get pool.epoch = !last && not (stopped ()) do
        Condition.wait pool.cond pool.mutex
      done;
      Atomic.decr pool.sleepers;
      Mutex.unlock pool.mutex
    end;
    if not (stopped ()) then begin
      last := Atomic.get pool.epoch;
      match Atomic.get pool.slot with
      | Some r -> participate r
      | None -> ()
    end
  done

let hardware_jobs () = max 1 (Domain.recommended_domain_count ())

let env_jobs () =
  match Sys.getenv_opt "DCO3D_JOBS" with
  | None | Some "" -> hardware_jobs ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ ->
          invalid_arg
            (Printf.sprintf "DCO3D_JOBS: expected a positive integer, got %S" s))

(* Guards [requested], [exact] and [current]. *)
let state_mutex = Mutex.create ()
let requested : int option ref = ref None
let exact_requested = ref false
let current : pool option ref = ref None

let configured_jobs () =
  match !requested with Some n -> n | None -> env_jobs ()

let jobs () = configured_jobs ()

let effective_jobs () =
  let n = configured_jobs () in
  if !exact_requested then n else min n (hardware_jobs ())

let make_pool size =
  let pool =
    {
      slot = Atomic.make None;
      epoch = Atomic.make 0;
      sleepers = Atomic.make 0;
      mutex = Mutex.create ();
      cond = Condition.create ();
      stop = Atomic.make false;
      caller_lock = Mutex.create ();
      workers = [||];
      size;
    }
  in
  pool.workers <-
    Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Atomic.set pool.stop true;
  (* the epoch bump knocks spinners out of their wait loop; the
     broadcast wakes parked workers *)
  Atomic.incr pool.epoch;
  Mutex.lock pool.mutex;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers

let set_jobs ?(exact = false) n =
  if n < 1 then invalid_arg "Pool.set_jobs: need at least one job";
  Mutex.lock state_mutex;
  let old = !current in
  current := None;
  requested := Some n;
  exact_requested := exact;
  Mutex.unlock state_mutex;
  Option.iter shutdown old

let get_pool () =
  Mutex.lock state_mutex;
  let pool =
    match !current with
    | Some p -> p
    | None ->
        let size =
          let n = configured_jobs () in
          if !exact_requested then n else min n (hardware_jobs ())
        in
        let p = make_pool size in
        current := Some p;
        p
  in
  Mutex.unlock state_mutex;
  pool

(* Publish [r] as the pool's active region and wake anyone parked.  The
   slot is written before the epoch moves, and both are atomics, so a
   worker that observes the new epoch observes the new slot. *)
let publish pool r =
  Atomic.set pool.slot (Some r);
  Atomic.incr pool.epoch;
  if Atomic.get pool.sleepers > 0 then begin
    Mutex.lock pool.mutex;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex
  end

(* Obs probes.  [pool/chunks] counts chunks at region entry, so its
   total depends only on the work submitted (the decomposition is a
   function of the range alone) — it is invariant under DCO3D_JOBS.
   The region counters record how regions were actually executed and
   *do* depend on the job count; they are diagnostics, not invariants. *)
let c_chunks = Obs.counter "pool/chunks"
let c_regions_parallel = Obs.counter "pool/regions_parallel"
let c_regions_inline = Obs.counter "pool/regions_inline"
let g_effective_jobs = Obs.gauge "pool/effective_jobs"

(* Run [run_chunk c] for every [0 <= c < n_chunks], on the pool when one
   is available and the region is not nested inside another region. *)
let run_region n_chunks run_chunk =
  if n_chunks > 0 then begin
    Obs.incr ~by:n_chunks c_chunks;
    let inline () =
      Obs.incr c_regions_inline;
      for c = 0 to n_chunks - 1 do
        run_chunk c
      done
    in
    if n_chunks = 1 || Domain.DLS.get in_worker || effective_jobs () = 1 then
      inline ()
    else begin
      let pool = get_pool () in
      if pool.size = 1 then inline ()
      else if not (Mutex.try_lock pool.caller_lock) then
        (* another domain owns the pool right now; the decomposition is
           deterministic either way, so just compute here *)
        inline ()
      else
        Fun.protect
          ~finally:(fun () -> Mutex.unlock pool.caller_lock)
          (fun () ->
            Obs.incr c_regions_parallel;
            Obs.set_gauge g_effective_jobs (float_of_int pool.size);
            let r =
              {
                n_chunks;
                task = run_chunk;
                next = Atomic.make 0;
                running = Atomic.make 0;
                failed = Atomic.make None;
              }
            in
            (* chunks this caller runs must not re-enter the pool *)
            Domain.DLS.set in_worker true;
            publish pool r;
            Fun.protect
              ~finally:(fun () -> Domain.DLS.set in_worker false)
              (fun () -> participate r);
            (* wait for helpers to leave their current chunk; the tail
               is at most one chunk long, so spinning beats parking *)
            while Atomic.get r.running > 0 do
              Domain.cpu_relax ()
            done;
            Atomic.set pool.slot None;
            match Atomic.get r.failed with
            | Some (e, bt) -> Printexc.raise_with_backtrace e bt
            | None -> ())
    end
  end

(* At most 256 chunks by default.  The decomposition is a function of
   the range alone — never of the job count — so chunk-indexed results
   (and reductions over them) are stable across DCO3D_JOBS values. *)
let resolve_chunk chunk lo hi =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Pool: chunk must be positive"
  | None -> max 1 ((hi - lo + 255) / 256)

let for_chunks ?chunk lo hi f =
  if hi > lo then begin
    let chunk = resolve_chunk chunk lo hi in
    let n_chunks = (hi - lo + chunk - 1) / chunk in
    run_region n_chunks (fun c ->
        let clo = lo + (c * chunk) in
        f clo (min hi (clo + chunk)))
  end

let parallel_for ?chunk lo hi f =
  for_chunks ?chunk lo hi (fun clo chi ->
      for i = clo to chi - 1 do
        f i
      done)

let parallel_for_reduce ?chunk ~init ~combine lo hi body =
  if hi <= lo then init
  else begin
    let chunk = resolve_chunk chunk lo hi in
    let n_chunks = (hi - lo + chunk - 1) / chunk in
    let partials = Array.make n_chunks None in
    run_region n_chunks (fun c ->
        let clo = lo + (c * chunk) in
        partials.(c) <- Some (body clo (min hi (clo + chunk))));
    Array.fold_left
      (fun acc p ->
        match p with Some v -> combine acc v | None -> assert false)
      init partials
  end

let tabulate ?chunk n f =
  if n < 0 then invalid_arg "Pool.tabulate: negative length";
  if n = 0 then [||]
  else
    (* per-chunk sub-arrays concatenated in chunk order, so no dummy
       element is ever needed *)
    parallel_for_reduce ?chunk ~init:[]
      ~combine:(fun acc part -> part :: acc)
      0 n
      (fun lo hi -> Array.init (hi - lo) (fun i -> f (lo + i)))
    |> List.rev |> Array.concat

let map_array ?chunk f a = tabulate ?chunk (Array.length a) (fun i -> f a.(i))

(* ------------------------------------------------------------------ *)
(* Per-domain scratch                                                  *)
(* ------------------------------------------------------------------ *)

(* A Treiber stack of reusable scratch values.  [with_scratch] pops one
   (or creates it on first use), runs the body, and pushes it back — so
   at most [effective_jobs ()] scratches are ever live, regardless of
   how many chunks a region has.  Pop/push are two CAS each, cheap
   enough for chunk-granular use. *)
type 's scratch_pool = { create : unit -> 's; stack : 's list Atomic.t }

let scratch_pool create = { create; stack = Atomic.make [] }

let rec scratch_take sp =
  match Atomic.get sp.stack with
  | [] -> sp.create ()
  | s :: rest as old ->
      if Atomic.compare_and_set sp.stack old rest then s else scratch_take sp

let rec scratch_put sp s =
  let old = Atomic.get sp.stack in
  if not (Atomic.compare_and_set sp.stack old (s :: old)) then scratch_put sp s

let with_scratch sp f =
  let s = scratch_take sp in
  match f s with
  | v ->
      scratch_put sp s;
      v
  | exception e ->
      scratch_put sp s;
      raise e
