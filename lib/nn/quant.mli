(** Int8 compilation of layer stacks.

    Compiles a {!Layer.t}'s {!Layer.spec} into a quantized inference
    program: convolutions with spatial extent ([kh*kw > 1], including
    every transposed convolution) run on the tensor library's int8
    engine with any directly following relu/leaky-relu fused into the
    requantizing epilogue; pointwise (1x1) convolutions and standalone
    activations stay in float32 — at this network's sizes a 1x1 conv
    is dominated by per-call fixed work (activation quantization,
    image staging) that int8 MAC savings cannot recoup.

    Determinism: a compiled program inherits the int8 kernels'
    guarantees — results are bit-identical at every [DCO3D_JOBS] value,
    and element [b] of a batched run is bit-identical to running
    sample [b] alone (per-sample activation scales). *)

type fused_act = [ `None | `Relu | `Leaky of float ]

type qunit =
  | Q_conv of {
      transposed : bool;
      stride : int;
      pad : int;
      qw : Dco3d_tensor.Tensor.qweight;
      bias : float array option;
      act : fused_act;
    }  (** int8 conv with fused requantize + bias + activation *)
  | F_conv of {
      transposed : bool;
      stride : int;
      pad : int;
      weight : Dco3d_tensor.Tensor.t;
      bias : Dco3d_tensor.Tensor.t option;
    }  (** float32 fallback conv (pointwise layers) *)
  | F_act of [ `Relu | `Leaky of float | `Sigmoid | `Tanh | `Maxpool2 ]

type t = { units : qunit list }

val of_layer : ?quantize_conv:(int -> bool) -> Layer.t -> t
(** Compile a layer (tree) into a quantized program.  Weights are
    quantized per output channel at call time, so the program captures
    the layer's weights as of this call.

    [quantize_conv] is the quantization policy: it receives each
    convolution's 0-based index in the flattened program (transposed
    convs count too) and answers whether that conv may run int8
    (default: all may).  A conv the policy declines — or one without
    spatial extent, which is never worth quantizing — compiles to a
    float32 [F_conv] with its activation left unfused.  Callers use
    the policy to pin accuracy-critical convolutions, e.g. the
    network's entry conv, whose quantization error would otherwise
    ride through every downstream layer.
    @raise Invalid_argument on layers the quantizer cannot compile
    (linear layers, opaque activations). *)

val forward_batch : t -> Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t
(** Run the program over a rank-4 [[n; c; h; w]] batch. *)

val dequantized : t -> t
(** The float32 network a quantized program effectively computes:
    quantized weights dequantized back to float ([q . scale]),
    float units untouched.  The golden-parity harness compares
    against this to separate quantization error from kernel bugs. *)

val num_quantized : t -> int
(** Number of int8 conv units (reporting). *)

val num_float : t -> int
(** Number of float32 fallback conv units (reporting). *)

(** {1 Persistence} *)

type parts
(** Pure-data image of a program — no closures, safe to [Marshal]. *)

val to_parts : t -> parts

val of_parts : parts -> t
(** Rebuild a program from its persisted image, revalidating every
    quantized payload (shape agreement, scale positivity, symmetric
    byte range).
    @raise Invalid_argument on any inconsistency. *)
