module T = Dco3d_tensor.Tensor
module V = Dco3d_autodiff.Value

type config = { in_channels : int; base_channels : int; depth : int }

let default_config = { in_channels = 8; base_channels = 8; depth = 2 }

(* One resolution level of the encoder/decoder. *)
type level = {
  enc : Layer.t;  (** double conv at this resolution *)
  up : Layer.t;  (** transposed conv from the level below *)
  dec : Layer.t;  (** double conv after skip concatenation *)
}

(* The int8 compilation of a network: one Quant program per layer,
   plus a fingerprint over every quantized bit. *)
type qnet = {
  q_cfg : config;
  q_levels : (Quant.t * Quant.t * Quant.t) array;  (** enc, up, dec *)
  q_bottleneck : Quant.t;
  q_comm_self : Quant.t;
  q_comm_cross : Quant.t;
  q_head : Quant.t;
  q_fp : string;
}

type t = {
  cfg : config;
  levels : level array;  (** index 0 = full resolution *)
  bottleneck : Layer.t;
  comm_self : Layer.t;  (** pointwise conv on the die's own bottleneck *)
  comm_cross : Layer.t;  (** pointwise conv on the other die's bottleneck *)
  head : Layer.t;  (** 1x1 conv to a single congestion channel *)
  mutable qcache : qnet option;
      (** memoized int8 compilation; invalidated on weight load *)
}

let double_conv rng ~in_channels ~out_channels =
  Layer.seq
    [
      Layer.conv2d rng ~pad:1 ~in_channels ~out_channels ~ksize:3 ();
      Layer.leaky_relu 0.1;
      Layer.conv2d rng ~pad:1 ~in_channels:out_channels ~out_channels ~ksize:3 ();
      Layer.leaky_relu 0.1;
    ]

let create rng cfg =
  if cfg.depth < 1 || cfg.depth > 2 then
    invalid_arg "Siamese_unet.create: depth must be 1 or 2";
  let base = cfg.base_channels in
  let ch level = base * (1 lsl level) in
  let levels =
    Array.init cfg.depth (fun l ->
        let cin = if l = 0 then cfg.in_channels else ch (l - 1) in
        let c = ch l in
        {
          enc = double_conv rng ~in_channels:cin ~out_channels:c;
          up =
            Layer.conv2d_transpose rng ~stride:2 ~in_channels:(ch (l + 1))
              ~out_channels:c ~ksize:2 ();
          dec = double_conv rng ~in_channels:(2 * c) ~out_channels:c;
        })
  in
  let cb = ch cfg.depth in
  let bottleneck = double_conv rng ~in_channels:(ch (cfg.depth - 1)) ~out_channels:cb in
  (* The communication layer merges the two bottlenecks through
     pointwise convolutions.  Writing it as [out_d = act (self b_d +
     cross b_other)] with the same (self, cross) weights for both dies
     keeps the architecture exactly equivariant under die exchange —
     the interchangeability the Siamese design is built for. *)
  let comm_self = Layer.pointwise rng ~in_channels:cb ~out_channels:cb () in
  let comm_cross = Layer.pointwise rng ~in_channels:cb ~out_channels:cb () in
  let head = Layer.pointwise rng ~in_channels:base ~out_channels:1 () in
  { cfg; levels; bottleneck; comm_self; comm_cross; head; qcache = None }

(* Encoder for one die: returns skip activations (one per level) and the
   bottleneck activation. *)
let encode net x =
  let skips = Array.make (Array.length net.levels) x in
  let cur = ref x in
  Array.iteri
    (fun l level ->
      let a = level.enc.Layer.forward !cur in
      skips.(l) <- a;
      cur := V.maxpool2 a)
    net.levels;
  (skips, net.bottleneck.Layer.forward !cur)

(* Decoder for one die given its (possibly communicated) bottleneck. *)
let decode net skips bottom =
  let cur = ref bottom in
  for l = Array.length net.levels - 1 downto 0 do
    let level = net.levels.(l) in
    let up = level.up.Layer.forward !cur in
    let cat = V.concat_channels [ up; skips.(l) ] in
    cur := level.dec.Layer.forward cat
  done;
  net.head.Layer.forward !cur

let forward net f0 f1 =
  let skips0, b0 = encode net f0 in
  let skips1, b1 = encode net f1 in
  (* Communication layer (Fig. 3b): mix the two bottlenecks through
     shared pointwise convolutions and hand each decoder a view of both
     dies. *)
  let communicate own other =
    V.leaky_relu 0.1
      (V.add
         (net.comm_self.Layer.forward own)
         (net.comm_cross.Layer.forward other))
  in
  let b0' = communicate b0 b1 in
  let b1' = communicate b1 b0 in
  (decode net skips0 b0', decode net skips1 b1')

let predict net f0 f1 =
  let c0, c1 = forward net (V.const f0) (V.const f1) in
  let to_map v =
    let d = V.data v in
    T.reshape (T.copy d) [| T.dim d 1; T.dim d 2 |]
  in
  (to_map c0, to_map c1)

(* ------------------------------------------------------------------ *)
(* Batched inference.                                                  *)
(*                                                                     *)
(* The same network applied to a rank-4 [n; c; h; w] batch through the *)
(* Layer.forward_batch path: one im2col/GEMM per conv layer for the    *)
(* whole batch.  Every step is bit-identical to the per-sample         *)
(* forward (the batched kernels only add GEMM columns, the elementwise *)
(* steps use the same scalar formulas), which is what lets the serve   *)
(* micro-batcher coalesce requests without changing any reply bit.     *)
(* ------------------------------------------------------------------ *)

let leaky_batch slope = T.map (fun v -> if v > 0. then v else slope *. v)

let encode_batch net x =
  let skips = Array.make (Array.length net.levels) x in
  let cur = ref x in
  Array.iteri
    (fun l level ->
      let a = level.enc.Layer.forward_batch !cur in
      skips.(l) <- a;
      cur := T.maxpool2_batch a)
    net.levels;
  (skips, net.bottleneck.Layer.forward_batch !cur)

let decode_batch net skips bottom =
  let cur = ref bottom in
  for l = Array.length net.levels - 1 downto 0 do
    let level = net.levels.(l) in
    let up = level.up.Layer.forward_batch !cur in
    let cat = T.concat_channels_batch [ up; skips.(l) ] in
    cur := level.dec.Layer.forward_batch cat
  done;
  net.head.Layer.forward_batch !cur

let forward_batch net x0 x1 =
  let skips0, b0 = encode_batch net x0 in
  let skips1, b1 = encode_batch net x1 in
  let communicate own other =
    leaky_batch 0.1
      (T.add
         (net.comm_self.Layer.forward_batch own)
         (net.comm_cross.Layer.forward_batch other))
  in
  let b0' = communicate b0 b1 in
  let b1' = communicate b1 b0 in
  (decode_batch net skips0 b0', decode_batch net skips1 b1')

(* ------------------------------------------------------------------ *)
(* Quantized int8 inference.                                           *)
(*                                                                     *)
(* The same data flow as forward_batch with each layer replaced by its *)
(* Quant compilation: spatial convs run on the int8 engine with fused  *)
(* requantize/bias/activation, the pointwise communication and head    *)
(* layers stay float32.  Per-sample activation quantization keeps the  *)
(* batching contract: element [b] of a batched quantized predict is    *)
(* bit-identical to the singleton quantized predict of sample [b].     *)
(* ------------------------------------------------------------------ *)

let q_programs q =
  List.concat
    [
      Array.to_list q.q_levels |> List.concat_map (fun (e, u, d) -> [ e; u; d ]);
      [ q.q_bottleneck; q.q_comm_self; q.q_comm_cross; q.q_head ];
    ]

let q_fingerprint_of cfg progs =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string ("i8", cfg, List.map Quant.to_parts progs) []))

let qnet_fingerprint q = q.q_fp

let quantize net =
  (* The second conv of the level-0 encoder stays float32.  Its output
     is the full-resolution skip tensor, so any quantization error
     there reaches the prediction twice — directly through the skip
     concatenation into the last decoder block and again through the
     pooled deep path — which makes it the single largest contributor
     to int8/f32 divergence (measured on the golden-parity harness).
     Pinning that one conv costs a single full-resolution conv at the
     network's thinnest channel count; everything else with spatial
     extent quantizes. *)
  let q_levels =
    Array.mapi
      (fun i l ->
        ( (if i = 0 then Quant.of_layer ~quantize_conv:(fun c -> c <> 1) l.enc
           else Quant.of_layer l.enc),
          Quant.of_layer l.up,
          Quant.of_layer l.dec ))
      net.levels
  in
  let q =
    {
      q_cfg = net.cfg;
      q_levels;
      q_bottleneck = Quant.of_layer net.bottleneck;
      q_comm_self = Quant.of_layer net.comm_self;
      q_comm_cross = Quant.of_layer net.comm_cross;
      q_head = Quant.of_layer net.head;
      q_fp = "";
    }
  in
  { q with q_fp = q_fingerprint_of net.cfg (q_programs q) }

let quantized net =
  match net.qcache with
  | Some q -> q
  | None ->
      let q = quantize net in
      net.qcache <- Some q;
      q

let encode_batch_q q x =
  let skips = Array.make (Array.length q.q_levels) x in
  let cur = ref x in
  Array.iteri
    (fun l (enc, _, _) ->
      let a = Quant.forward_batch enc !cur in
      skips.(l) <- a;
      cur := T.maxpool2_batch a)
    q.q_levels;
  (skips, Quant.forward_batch q.q_bottleneck !cur)

let decode_batch_q q skips bottom =
  let cur = ref bottom in
  for l = Array.length q.q_levels - 1 downto 0 do
    let _, up, dec = q.q_levels.(l) in
    let u = Quant.forward_batch up !cur in
    cur := Quant.forward_batch dec (T.concat_channels_batch [ u; skips.(l) ])
  done;
  Quant.forward_batch q.q_head !cur

let forward_batch_q q x0 x1 =
  let skips0, b0 = encode_batch_q q x0 in
  let skips1, b1 = encode_batch_q q x1 in
  let communicate own other =
    leaky_batch 0.1
      (T.add
         (Quant.forward_batch q.q_comm_self own)
         (Quant.forward_batch q.q_comm_cross other))
  in
  let b0' = communicate b0 b1 in
  let b1' = communicate b1 b0 in
  (decode_batch_q q skips0 b0', decode_batch_q q skips1 b1')

let predict_batch ?(numeric = `F32) net pairs =
  if Array.length pairs = 0 then [||]
  else begin
    let x0 = T.stack (Array.map fst pairs) in
    let x1 = T.stack (Array.map snd pairs) in
    let c0, c1 =
      match numeric with
      | `F32 -> forward_batch net x0 x1
      | `I8 -> forward_batch_q (quantized net) x0 x1
    in
    (* each sample comes back as [1; h; w]; flatten to the rank-2 map
       [predict] returns *)
    let split c =
      Array.map
        (fun m -> T.reshape m [| T.dim m 1; T.dim m 2 |])
        (T.unstack c)
    in
    Array.map2 (fun a b -> (a, b)) (split c0) (split c1)
  end

let all_layers net =
  List.concat
    [
      Array.to_list net.levels
      |> List.concat_map (fun l -> [ l.enc; l.up; l.dec ]);
      [ net.bottleneck; net.comm_self; net.comm_cross; net.head ];
    ]

let params net = List.concat_map (fun l -> l.Layer.params) (all_layers net)
let num_params net = List.fold_left (fun acc p -> acc + V.numel p) 0 (params net)
let config net = net.cfg

let state net = List.map (fun p -> T.copy (V.data p)) (params net)

let fingerprint net =
  let weights =
    List.map
      (fun p ->
        let d = V.data p in
        (T.shape d, Array.init (T.numel d) (T.get_flat d)))
      (params net)
  in
  Digest.to_hex (Digest.string (Marshal.to_string (net.cfg, weights) []))

let load_state net snapshot =
  let ps = params net in
  if List.length snapshot <> List.length ps then
    invalid_arg "Siamese_unet.load_state: parameter count mismatch";
  List.iter2
    (fun p s ->
      let d = V.data p in
      if not (T.same_shape d s) then
        invalid_arg "Siamese_unet.load_state: shape mismatch";
      for i = 0 to T.numel d - 1 do
        T.set_flat d i (T.get_flat s i)
      done)
    ps snapshot;
  (* the memoized int8 compilation captured the old weights *)
  net.qcache <- None

(* Persistence: a tagged Marshal image of the config plus raw
   (shape, data) pairs.  The file is only ever read back by [load], so
   the representation can stay internal. *)
type snapshot = {
  s_cfg : config;
  s_weights : (int array * float array) list;
}

let magic = "DCO3D-SIAUNET-V1"

let save net path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let snap =
        {
          s_cfg = net.cfg;
          s_weights =
            List.map
              (fun p ->
                let d = V.data p in
                (T.shape d, Array.init (T.numel d) (T.get_flat d)))
              (params net);
        }
      in
      Marshal.to_channel oc snap [])

exception Load_error of string

let load_error path cause =
  raise (Load_error (Printf.sprintf "Siamese_unet.load: %s: %s" path cause))

let config_string c =
  Printf.sprintf "{in_channels=%d; base_channels=%d; depth=%d}" c.in_channels
    c.base_channels c.depth

let load ?expect path =
  let ic =
    try open_in_bin path with Sys_error msg -> load_error path msg
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let snap : snapshot =
        try
          let tag = really_input_string ic (String.length magic) in
          if tag <> magic then load_error path "bad file magic";
          Marshal.from_channel ic
        with
        | End_of_file -> load_error path "truncated file"
        | Failure msg -> load_error path msg
      in
      (* Reject before building anything: a wrong-architecture file must
         fail here with a clear message, not deep inside a conv once a
         wrong-shaped network is already in use. *)
      let cfg = snap.s_cfg in
      if cfg.in_channels < 1 || cfg.base_channels < 1 || cfg.depth < 1
         || cfg.depth > 2
      then load_error path ("invalid architecture " ^ config_string cfg);
      (match expect with
      | Some e when e <> cfg ->
          load_error path
            (Printf.sprintf
               "architecture mismatch: file holds weights for %s, requested %s"
               (config_string cfg) (config_string e))
      | _ -> ());
      try
        let net = create (Dco3d_tensor.Rng.create 0) cfg in
        load_state net
          (List.map (fun (shape, data) -> T.make shape data) snap.s_weights);
        net
      with Invalid_argument msg ->
        load_error path
          (Printf.sprintf "weights disagree with the declared architecture %s (%s)"
             (config_string cfg) msg))

(* ------------------------------------------------------------------ *)
(* Quantized persistence.                                              *)
(*                                                                     *)
(* A standalone int8 artifact: config plus the Quant parts of every    *)
(* layer program, framed as magic + MD5 digest + payload so that any   *)
(* corruption is caught deterministically at load, before any of the   *)
(* packed bytes reach a kernel.                                        *)
(* ------------------------------------------------------------------ *)

let qmagic = "DCO3D-QUNET-V1"

let save_quantized q path =
  let payload =
    Marshal.to_string (q.q_cfg, List.map Quant.to_parts (q_programs q)) []
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc qmagic;
      output_string oc (Digest.string payload);
      output_string oc payload)

let qload_error path cause =
  raise
    (Load_error (Printf.sprintf "Siamese_unet.load_quantized: %s: %s" path cause))

(* Rebuild the float32 parameter snapshot a quantized program implies:
   the dequantized weights and stored biases, ordered exactly as the
   layer's [params] (weight before bias, convs in program order). *)
let state_of_program prog =
  List.concat_map
    (function
      | Quant.F_conv { weight; bias; _ } -> weight :: Option.to_list bias
      | _ -> [])
    (Quant.dequantized prog).Quant.units

let load_quantized path =
  let ic = try open_in_bin path with Sys_error msg -> qload_error path msg in
  let cfg, parts =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          let tag = really_input_string ic (String.length qmagic) in
          if tag <> qmagic then qload_error path "bad file magic";
          let digest = really_input_string ic 16 in
          let len = in_channel_length ic - pos_in ic in
          let payload = really_input_string ic len in
          if Digest.string payload <> digest then
            qload_error path "payload digest mismatch (corrupt file)";
          (Marshal.from_string payload 0 : config * Quant.parts list)
        with
        | End_of_file -> qload_error path "truncated file"
        | Failure msg -> qload_error path msg)
  in
  if cfg.in_channels < 1 || cfg.base_channels < 1 || cfg.depth < 1
     || cfg.depth > 2
  then qload_error path ("invalid architecture " ^ config_string cfg);
  if List.length parts <> (3 * cfg.depth) + 4 then
    qload_error path
      (Printf.sprintf "expected %d layer programs, file holds %d"
         ((3 * cfg.depth) + 4) (List.length parts));
  let progs =
    try List.map Quant.of_parts parts
    with Invalid_argument msg -> qload_error path msg
  in
  let arr = Array.of_list progs in
  let q =
    let q0 =
      {
        q_cfg = cfg;
        q_levels =
          Array.init cfg.depth (fun l ->
              (arr.(3 * l), arr.((3 * l) + 1), arr.((3 * l) + 2)));
        q_bottleneck = arr.(3 * cfg.depth);
        q_comm_self = arr.((3 * cfg.depth) + 1);
        q_comm_cross = arr.((3 * cfg.depth) + 2);
        q_head = arr.((3 * cfg.depth) + 3);
        q_fp = "";
      }
    in
    { q0 with q_fp = q_fingerprint_of cfg (q_programs q0) }
  in
  (* The float side of the returned network carries the dequantized
     (fake-quantized) weights — the function the int8 path effectively
     computes up to integer rounding — while the seeded qcache serves
     the exact artifact on the int8 path. *)
  try
    let net = create (Dco3d_tensor.Rng.create 0) cfg in
    load_state net (List.concat_map state_of_program progs);
    net.qcache <- Some q;
    net
  with Invalid_argument msg ->
    qload_error path
      (Printf.sprintf "programs disagree with the declared architecture %s (%s)"
         (config_string cfg) msg)
