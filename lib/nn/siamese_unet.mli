(** The paper's 3D congestion predictor: a Siamese UNet (Fig. 3).

    Both dies of the face-to-face 3D IC are processed by the {e same}
    encoder and decoder (shared weights — the dies are interchangeable),
    while a pointwise-convolution {e communication layer} at the
    bottleneck merges the two encoder outputs and hands each die's
    decoder a view of the other die.  We realize the merge as shared
    self/cross 1x1 convolutions ([out_d = act (self b_d + cross
    b_other)]), which keeps the whole network exactly equivariant under
    die exchange — swapping the inputs swaps the predictions.

    The network is an images-to-images model: it maps the per-die
    feature stacks [F0, F1 : [c_in; h; w]] to predicted post-route
    congestion maps [C0, C1 : [1; h; w]] (paper: [c_in = 7] and
    [h = w = 224]; here [c_in = 8] — the Table-II seven plus the solved
    thermal-rise plane — and the resolution is configurable, see
    DESIGN.md, "Scale parameters"). *)

type t

type config = {
  in_channels : int;  (** feature channels per die (paper: 7; here 8 with the thermal plane) *)
  base_channels : int;  (** encoder width at full resolution *)
  depth : int;  (** number of 2x downsamplings (1 or 2 supported) *)
}

val default_config : config
(** [{ in_channels = 8; base_channels = 8; depth = 2 }] — the paper's
    7 feature channels plus the thermal channel. *)

val create : Dco3d_tensor.Rng.t -> config -> t

val forward :
  t ->
  Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t * Dco3d_autodiff.Value.t
(** [forward net f0 f1] predicts the two congestion maps.  Spatial
    dimensions must be divisible by [2^depth].  Differentiable in both
    the network parameters and the inputs (the latter is what Algorithm
    2 exploits: gradients flow from the congestion loss through the
    frozen network back into the feature maps). *)

val predict :
  t -> Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t ->
  Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t
(** Inference on plain tensors; returns rank-2 [[h; w]] maps. *)

val predict_batch :
  ?numeric:[ `F32 | `I8 ] ->
  t ->
  (Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t) array ->
  (Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t) array
(** [predict_batch net pairs] is {!predict} over a whole batch in one
    network pass: the [(f0, f1)] stacks are packed into rank-4
    [[n; c; h; w]] tensors and every conv layer runs as a single
    batched im2col/GEMM call.  Element [i] of the result is
    bit-identical to [predict net (fst pairs.(i)) (snd pairs.(i))] at
    every [DCO3D_JOBS] value — the contract the serve micro-batcher
    and its result cache depend on.

    [~numeric:`I8] (default [`F32]) runs the int8 compilation of the
    network (see {!quantized}) instead: spatial convs execute on the
    quantized engine, within a small tolerance of the float path (the
    golden-parity harness bounds the divergence).  The determinism and
    batching contracts hold on this path too — results are
    bit-identical at every [DCO3D_JOBS] value and per-sample
    activation scales decouple batchmates. *)

(** {1 Quantized int8 inference} *)

type qnet
(** An int8 compilation of a network: spatial convolutions quantized
    per output channel with fused requantize/bias/activation
    epilogues, pointwise layers kept in float32 (see {!Quant}). *)

val quantize : t -> qnet
(** Compile the network's current weights.  Pure — does not touch the
    memoized cache. *)

val quantized : t -> qnet
(** Memoized {!quantize}: compiled once per weight state; the cache is
    invalidated by {!load_state}. *)

val forward_batch_q :
  qnet ->
  Dco3d_tensor.Tensor.t ->
  Dco3d_tensor.Tensor.t ->
  Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t
(** The batched two-die forward on the int8 compilation. *)

val qnet_fingerprint : qnet -> string
(** Hex digest of the architecture plus every quantized bit (packed
    int8 payloads, scales, float fallback weights), domain-separated
    from {!fingerprint} — an int8 and a float model can never share a
    cache key. *)

val save_quantized : qnet -> string -> unit
(** Persist a standalone int8 artifact (magic + digest framing). *)

val load_quantized : string -> t
(** Restore a network from an int8 artifact.  The returned network's
    int8 path serves the artifact exactly ({!quantized} is pre-seeded);
    its float path carries the dequantized ("fake-quantized") weights —
    the function the int8 path computes up to integer rounding.
    @raise Load_error on a missing, truncated, corrupt (digest
    mismatch) or inconsistent file. *)

val params : t -> Dco3d_autodiff.Value.t list
val num_params : t -> int
val config : t -> config

val state : t -> Dco3d_tensor.Tensor.t list
val load_state : t -> Dco3d_tensor.Tensor.t list -> unit

val fingerprint : t -> string
(** Hex digest of the architecture plus every weight bit.  Two networks
    share a fingerprint iff they compute the same function; the serve
    result cache keys on it so stale entries can never survive a model
    swap. *)

exception Load_error of string
(** Raised by {!load} on a missing, truncated or corrupt file; the
    message names the offending path and the cause. *)

val save : t -> string -> unit
(** Persist configuration and weights to a file. *)

val load : ?expect:config -> string -> t
(** Restore a network written by {!save}.  When [expect] is given, a
    file whose stored architecture hyperparameters disagree with it is
    rejected up front with a message naming both configurations.  Files
    whose weight list disagrees with their own declared architecture
    (count or shapes) are likewise rejected here rather than failing
    deep inside a convolution later.
    @raise Load_error on a missing, truncated, malformed or mismatched
    file. *)
