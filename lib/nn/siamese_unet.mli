(** The paper's 3D congestion predictor: a Siamese UNet (Fig. 3).

    Both dies of the face-to-face 3D IC are processed by the {e same}
    encoder and decoder (shared weights — the dies are interchangeable),
    while a pointwise-convolution {e communication layer} at the
    bottleneck merges the two encoder outputs and hands each die's
    decoder a view of the other die.  We realize the merge as shared
    self/cross 1x1 convolutions ([out_d = act (self b_d + cross
    b_other)]), which keeps the whole network exactly equivariant under
    die exchange — swapping the inputs swaps the predictions.

    The network is an images-to-images model: it maps the per-die
    feature stacks [F0, F1 : [c_in; h; w]] to predicted post-route
    congestion maps [C0, C1 : [1; h; w]] (paper: [c_in = 7],
    [h = w = 224]; here the resolution is configurable — see DESIGN.md,
    "Scale parameters"). *)

type t

type config = {
  in_channels : int;  (** feature channels per die (paper: 7) *)
  base_channels : int;  (** encoder width at full resolution *)
  depth : int;  (** number of 2x downsamplings (1 or 2 supported) *)
}

val default_config : config
(** [{ in_channels = 7; base_channels = 8; depth = 2 }]. *)

val create : Dco3d_tensor.Rng.t -> config -> t

val forward :
  t ->
  Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t * Dco3d_autodiff.Value.t
(** [forward net f0 f1] predicts the two congestion maps.  Spatial
    dimensions must be divisible by [2^depth].  Differentiable in both
    the network parameters and the inputs (the latter is what Algorithm
    2 exploits: gradients flow from the congestion loss through the
    frozen network back into the feature maps). *)

val predict :
  t -> Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t ->
  Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t
(** Inference on plain tensors; returns rank-2 [[h; w]] maps. *)

val params : t -> Dco3d_autodiff.Value.t list
val num_params : t -> int
val config : t -> config

val state : t -> Dco3d_tensor.Tensor.t list
val load_state : t -> Dco3d_tensor.Tensor.t list -> unit

exception Load_error of string
(** Raised by {!load} on a missing, truncated or corrupt file; the
    message names the offending path and the cause. *)

val save : t -> string -> unit
(** Persist configuration and weights to a file. *)

val load : string -> t
(** Restore a network written by {!save}.
    @raise Load_error on a missing, truncated or malformed file. *)
