module T = Dco3d_tensor.Tensor
module V = Dco3d_autodiff.Value

(* A quantized inference program compiled from a Layer.t spec: a flat
   run of units executed left to right.  Convolutions with spatial
   extent (kh*kw > 1, including every transposed conv) go to the int8
   engine with any directly following relu/leaky fused into the
   requantizing epilogue; pointwise (1x1) convolutions stay in float32
   — at this network's sizes their cost is dominated by the per-call
   fixed work (activation quantization, image staging), which the int8
   MAC savings cannot recoup.  Everything is plain data, so a program
   round-trips through [parts] for persistence. *)

type fused_act = [ `None | `Relu | `Leaky of float ]

type qunit =
  | Q_conv of {
      transposed : bool;
      stride : int;
      pad : int;
      qw : T.qweight;
      bias : float array option;
      act : fused_act;
    }
  | F_conv of {
      transposed : bool;
      stride : int;
      pad : int;
      weight : T.t;
      bias : T.t option;
    }
  | F_act of [ `Relu | `Leaky of float | `Sigmoid | `Tanh | `Maxpool2 ]

type t = { units : qunit list }

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let rec flatten spec acc =
  match spec with
  | Layer.Seq specs -> List.fold_right flatten specs acc
  | s -> s :: acc

let tensor_bias = function
  | None -> None
  | Some b -> Some (T.copy (V.data b))

let float_bias = function
  | None -> None
  | Some b ->
      let d = V.data b in
      Some (Array.init (T.numel d) (T.get_flat d))

(* A conv is worth quantizing when it has spatial extent: its int8
   GEMM then amortizes the per-call quantize/stage overhead over
   kh*kw-fold more MACs per activation byte. *)
let quantizable w = T.dim w 2 * T.dim w 3 > 1

let compile_conv ~quantize ~transposed ~stride ~pad ~weight ~bias ~act =
  let w = V.data weight in
  if quantize then
    let qw =
      if transposed then T.quantize_weight_transposed w else T.quantize_weight w
    in
    Q_conv { transposed; stride; pad; qw; bias = float_bias bias; act }
  else
    F_conv
      { transposed; stride; pad; weight = T.copy w; bias = tensor_bias bias }

let of_layer ?(quantize_conv = fun _ -> true) (layer : Layer.t) =
  let conv_idx = ref (-1) in
  let rec go = function
    | [] -> []
    | Layer.Conv { stride; pad; weight; bias } :: rest ->
        incr conv_idx;
        let quantize = quantize_conv !conv_idx && quantizable (V.data weight) in
        let act, rest =
          match rest with
          | Layer.Act Layer.Relu :: tl when quantize -> (`Relu, tl)
          | Layer.Act (Layer.Leaky a) :: tl when quantize -> (`Leaky a, tl)
          | _ -> (`None, rest)
        in
        compile_conv ~quantize ~transposed:false ~stride ~pad ~weight ~bias ~act
        :: go rest
    | Layer.Conv_transpose { stride; pad; weight; bias } :: rest ->
        incr conv_idx;
        let quantize = quantize_conv !conv_idx && quantizable (V.data weight) in
        let act, rest =
          match rest with
          | Layer.Act Layer.Relu :: tl when quantize -> (`Relu, tl)
          | Layer.Act (Layer.Leaky a) :: tl when quantize -> (`Leaky a, tl)
          | _ -> (`None, rest)
        in
        compile_conv ~quantize ~transposed:true ~stride ~pad ~weight ~bias ~act
        :: go rest
    | Layer.Act k :: rest ->
        let a =
          match k with
          | Layer.Relu -> `Relu
          | Layer.Leaky a -> `Leaky a
          | Layer.Sigmoid -> `Sigmoid
          | Layer.Tanh -> `Tanh
          | Layer.Maxpool2 -> `Maxpool2
          | Layer.Opaque ->
              invalid_arg "Quant.of_layer: opaque activation cannot be compiled"
        in
        F_act a :: go rest
    | Layer.Linear _ :: _ ->
        invalid_arg "Quant.of_layer: linear layers are not supported"
    | Layer.Seq _ :: _ -> assert false (* flattened away *)
  in
  { units = go (flatten layer.Layer.spec []) }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let leaky slope = T.map (fun v -> if v > 0. then v else slope *. v)

let run_unit x = function
  | Q_conv { transposed; stride; pad; qw; bias; act } ->
      let bias = Option.map (fun b -> T.make [| Array.length b |] b) bias in
      if transposed then
        T.conv2d_transpose_batch_i8 ~stride ~pad ~act x ~qweight:qw ~bias
      else T.conv2d_batch_i8 ~stride ~pad ~act x ~qweight:qw ~bias
  | F_conv { transposed; stride; pad; weight; bias } ->
      if transposed then
        T.conv2d_transpose_batch ~stride ~pad x ~weight ~bias
      else T.conv2d_batch ~stride ~pad x ~weight ~bias
  | F_act `Relu -> T.relu x
  | F_act (`Leaky a) -> leaky a x
  | F_act `Sigmoid -> T.sigmoid x
  | F_act `Tanh -> T.tanh_ x
  | F_act `Maxpool2 -> T.maxpool2_batch x

let forward_batch t x = List.fold_left run_unit x t.units

(* ------------------------------------------------------------------ *)
(* Persistence parts                                                   *)
(* ------------------------------------------------------------------ *)

(* Pure-data image of a program.  Kept as a versioned closed type so a
   Marshal round trip needs no closures; [of_parts] revalidates every
   quantized payload through [T.qweight_of_parts]. *)
type pact = A_none | A_relu | A_leaky of float | A_sigmoid | A_tanh | A_maxpool

type punit =
  | P_qconv of {
      p_transposed : bool;
      p_stride : int;
      p_pad : int;
      p_shape : int array;
      p_data : Bytes.t;
      p_scales : float array;
      p_bias : float array option;
      p_act : pact;
    }
  | P_fconv of {
      p_transposed : bool;
      p_stride : int;
      p_pad : int;
      p_wshape : int array;
      p_weight : float array;
      p_bias : float array option;
    }
  | P_act of pact

type parts = punit list

let to_parts t =
  List.map
    (function
      | Q_conv { transposed; stride; pad; qw; bias; act } ->
          P_qconv
            {
              p_transposed = transposed;
              p_stride = stride;
              p_pad = pad;
              p_shape = T.qweight_shape qw;
              p_data = T.qweight_bytes qw;
              p_scales = T.qweight_scales qw;
              p_bias = Option.map Array.copy bias;
              p_act =
                (match act with
                | `None -> A_none
                | `Relu -> A_relu
                | `Leaky a -> A_leaky a);
            }
      | F_conv { transposed; stride; pad; weight; bias } ->
          P_fconv
            {
              p_transposed = transposed;
              p_stride = stride;
              p_pad = pad;
              p_wshape = T.shape weight;
              p_weight = Array.init (T.numel weight) (T.get_flat weight);
              p_bias =
                Option.map
                  (fun b -> Array.init (T.numel b) (T.get_flat b))
                  bias;
            }
      | F_act a ->
          P_act
            (match a with
            | `Relu -> A_relu
            | `Leaky s -> A_leaky s
            | `Sigmoid -> A_sigmoid
            | `Tanh -> A_tanh
            | `Maxpool2 -> A_maxpool))
    t.units

let of_parts parts =
  let fused = function
    | A_none -> `None
    | A_relu -> `Relu
    | A_leaky a -> `Leaky a
    | _ -> invalid_arg "Quant.of_parts: invalid fused activation"
  in
  {
    units =
      List.map
        (function
          | P_qconv p ->
              Q_conv
                {
                  transposed = p.p_transposed;
                  stride = p.p_stride;
                  pad = p.p_pad;
                  qw =
                    T.qweight_of_parts ~shape:p.p_shape ~data:p.p_data
                      ~scales:p.p_scales;
                  bias = Option.map Array.copy p.p_bias;
                  act = fused p.p_act;
                }
          | P_fconv p ->
              F_conv
                {
                  transposed = p.p_transposed;
                  stride = p.p_stride;
                  pad = p.p_pad;
                  weight = T.make p.p_wshape p.p_weight;
                  bias =
                    Option.map
                      (fun b -> T.make [| Array.length b |] b)
                      p.p_bias;
                }
          | P_act a ->
              F_act
                (match a with
                | A_relu -> `Relu
                | A_leaky s -> `Leaky s
                | A_sigmoid -> `Sigmoid
                | A_tanh -> `Tanh
                | A_maxpool -> `Maxpool2
                | A_none -> invalid_arg "Quant.of_parts: bare A_none activation"))
        parts;
  }

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let num_quantized t =
  List.length
    (List.filter (function Q_conv _ -> true | _ -> false) t.units)

let num_float t =
  List.length
    (List.filter (function F_conv _ -> true | _ -> false) t.units)

(* The float network the quantized program effectively runs: quantized
   weights dequantized back to float, everything else untouched.  The
   parity harness compares against this to isolate quantization error
   from kernel bugs. *)
(* Invert quantize_weight_transposed's layout change: the stored
   forward kernel [co; ci; kh; kw] (spatially flipped) back to the
   transposed-conv layout [ci; co; kh; kw]. *)
let unflip_transposed qw =
  let fwd = T.dequantize_weight qw in
  let shape = T.shape fwd in
  let co = shape.(0) and ci = shape.(1) in
  let kh = shape.(2) and kw = shape.(3) in
  let out = Array.make (ci * co * kh * kw) 0. in
  for o = 0 to co - 1 do
    for c = 0 to ci - 1 do
      for ky = 0 to kh - 1 do
        for kx = 0 to kw - 1 do
          out.((((((c * co) + o) * kh) + ky) * kw) + kx) <-
            T.get_flat fwd
              ((((((o * ci) + c) * kh) + (kh - 1 - ky)) * kw) + (kw - 1 - kx))
        done
      done
    done
  done;
  T.make [| ci; co; kh; kw |] out

let dequantized_units t =
  List.map
    (function
      | Q_conv { transposed; stride; pad; qw; bias; act } ->
          let w =
            if transposed then unflip_transposed qw else T.dequantize_weight qw
          in
          [
            F_conv
              {
                transposed;
                stride;
                pad;
                weight = w;
                bias = Option.map (fun b -> T.make [| Array.length b |] b) bias;
              };
          ]
          @ (match act with
            | `None -> []
            | `Relu -> [ F_act `Relu ]
            | `Leaky a -> [ F_act (`Leaky a) ])
      | u -> [ u ])
    t.units
  |> List.concat

let dequantized t = { units = dequantized_units t }
