module T = Dco3d_tensor.Tensor
module V = Dco3d_autodiff.Value

type act_kind = Relu | Leaky of float | Sigmoid | Tanh | Maxpool2 | Opaque

type spec =
  | Conv of { stride : int; pad : int; weight : V.t; bias : V.t option }
  | Conv_transpose of {
      stride : int;
      pad : int;
      weight : V.t;
      bias : V.t option;
    }
  | Linear of { weight : V.t; bias : V.t option }
  | Act of act_kind
  | Seq of spec list

type t = {
  params : V.t list;
  forward : V.t -> V.t;
  forward_batch : T.t -> T.t;
  spec : spec;
}

let no_batch name _ =
  invalid_arg (Printf.sprintf "Layer.forward_batch: %s has no batched path" name)

let conv2d rng ?(stride = 1) ?(pad = 0) ?(bias = true) ~in_channels
    ~out_channels ~ksize () =
  let fan_in = in_channels * ksize * ksize in
  let w = V.param (T.kaiming rng ~fan_in [| out_channels; in_channels; ksize; ksize |]) in
  let b = if bias then Some (V.param (T.zeros [| out_channels |])) else None in
  let params = w :: Option.to_list b in
  {
    params;
    forward = (fun x -> V.conv2d ~stride ~pad x ~weight:w ~bias:b);
    forward_batch =
      (fun x ->
        T.conv2d_batch ~stride ~pad x ~weight:(V.data w)
          ~bias:(Option.map V.data b));
    spec = Conv { stride; pad; weight = w; bias = b };
  }

let conv2d_transpose rng ?(stride = 1) ?(pad = 0) ?(bias = true) ~in_channels
    ~out_channels ~ksize () =
  let fan_in = in_channels * ksize * ksize in
  let w = V.param (T.kaiming rng ~fan_in [| in_channels; out_channels; ksize; ksize |]) in
  let b = if bias then Some (V.param (T.zeros [| out_channels |])) else None in
  let params = w :: Option.to_list b in
  {
    params;
    forward = (fun x -> V.conv2d_transpose ~stride ~pad x ~weight:w ~bias:b);
    forward_batch =
      (fun x ->
        T.conv2d_transpose_batch ~stride ~pad x ~weight:(V.data w)
          ~bias:(Option.map V.data b));
    spec = Conv_transpose { stride; pad; weight = w; bias = b };
  }

let pointwise rng ~in_channels ~out_channels () =
  conv2d rng ~in_channels ~out_channels ~ksize:1 ()

(* Same per-row bias addition as [V.add_bias_rows], on plain tensors. *)
let add_bias_rows_t x b =
  let n = T.dim x 0 and f = T.dim x 1 in
  let y = T.copy x in
  for i = 0 to n - 1 do
    for j = 0 to f - 1 do
      T.set2 y i j (T.get2 y i j +. T.get_flat b j)
    done
  done;
  y

let linear rng ?(bias = true) ~in_dim ~out_dim () =
  let w = V.param (T.kaiming rng ~fan_in:in_dim [| in_dim; out_dim |]) in
  let b = if bias then Some (V.param (T.zeros [| out_dim |])) else None in
  let params = w :: Option.to_list b in
  {
    params;
    forward =
      (fun x ->
        let y = V.matmul x w in
        match b with Some b -> V.add_bias_rows y b | None -> y);
    forward_batch =
      (fun x ->
        let y = T.matmul x (V.data w) in
        match b with Some b -> add_bias_rows_t y (V.data b) | None -> y);
    spec = Linear { weight = w; bias = b };
  }

let activation ?batch ?(kind = Opaque) f =
  {
    params = [];
    forward = f;
    forward_batch =
      (match batch with Some fb -> fb | None -> no_batch "activation");
    spec = Act kind;
  }

let relu = activation ~batch:T.relu ~kind:Relu V.relu

let leaky_relu slope =
  activation
    ~batch:(T.map (fun x -> if x > 0. then x else slope *. x))
    ~kind:(Leaky slope) (V.leaky_relu slope)

let sigmoid = activation ~batch:T.sigmoid ~kind:Sigmoid V.sigmoid
let tanh_ = activation ~batch:T.tanh_ ~kind:Tanh V.tanh_
let maxpool2 = activation ~batch:T.maxpool2_batch ~kind:Maxpool2 V.maxpool2

let seq layers =
  {
    params = List.concat_map (fun l -> l.params) layers;
    forward = (fun x -> List.fold_left (fun acc l -> l.forward acc) x layers);
    forward_batch =
      (fun x -> List.fold_left (fun acc l -> l.forward_batch acc) x layers);
    spec = Seq (List.map (fun l -> l.spec) layers);
  }

let num_params l = List.fold_left (fun acc p -> acc + V.numel p) 0 l.params

let state l = List.map (fun p -> T.copy (V.data p)) l.params

let load_state l snapshot =
  if List.length snapshot <> List.length l.params then
    invalid_arg "Layer.load_state: parameter count mismatch";
  List.iter2
    (fun p s ->
      let d = V.data p in
      if not (T.same_shape d s) then
        invalid_arg "Layer.load_state: shape mismatch";
      for i = 0 to T.numel d - 1 do
        T.set_flat d i (T.get_flat s i)
      done)
    l.params snapshot
