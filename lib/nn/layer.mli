(** Neural-network layers as parameterized differentiable functions.

    A layer couples a list of trainable {!Dco3d_autodiff.Value.t}
    parameters with a forward function.  Layers compose with {!seq};
    weight sharing (the Siamese property of the paper's predictor) is
    obtained simply by applying the same layer value to several
    inputs. *)

type act_kind =
  | Relu
  | Leaky of float
  | Sigmoid
  | Tanh
  | Maxpool2
  | Opaque  (** a custom {!activation} — not introspectable *)

(** Structural description of a layer, for compilers that rewrite the
    inference path (e.g. {!Quant} fusing activations into int8 conv
    epilogues).  Parameter values are shared with [params], so a spec
    always sees the current weights. *)
type spec =
  | Conv of {
      stride : int;
      pad : int;
      weight : Dco3d_autodiff.Value.t;
      bias : Dco3d_autodiff.Value.t option;
    }
  | Conv_transpose of {
      stride : int;
      pad : int;
      weight : Dco3d_autodiff.Value.t;
      bias : Dco3d_autodiff.Value.t option;
    }
  | Linear of {
      weight : Dco3d_autodiff.Value.t;
      bias : Dco3d_autodiff.Value.t option;
    }
  | Act of act_kind
  | Seq of spec list

type t = {
  params : Dco3d_autodiff.Value.t list;  (** trainable leaves *)
  forward : Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t;
  forward_batch : Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t;
      (** Inference-only batched forward over rank-4 [[n; c; h; w]]
          tensors (rank-2 [[n; f]] for {!linear}).  Bit-identical to
          applying {!forward} to each sample separately — the contract
          the serve micro-batcher relies on.  Layers built with a bare
          {!activation} (no [?batch]) raise [Invalid_argument]. *)
  spec : spec;  (** structure, for introspection *)
}

val conv2d :
  Dco3d_tensor.Rng.t ->
  ?stride:int ->
  ?pad:int ->
  ?bias:bool ->
  in_channels:int ->
  out_channels:int ->
  ksize:int ->
  unit ->
  t
(** 2-D convolution with He-normal weight init. *)

val conv2d_transpose :
  Dco3d_tensor.Rng.t ->
  ?stride:int ->
  ?pad:int ->
  ?bias:bool ->
  in_channels:int ->
  out_channels:int ->
  ksize:int ->
  unit ->
  t
(** Transposed convolution (UNet upsampling path). *)

val pointwise :
  Dco3d_tensor.Rng.t -> in_channels:int -> out_channels:int -> unit -> t
(** 1x1 convolution — the paper's inter-die communication layer. *)

val linear :
  Dco3d_tensor.Rng.t -> ?bias:bool -> in_dim:int -> out_dim:int -> unit -> t
(** Dense layer on rank-2 inputs [[n; in_dim]] (row-wise). *)

val activation :
  ?batch:(Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t) ->
  ?kind:act_kind ->
  (Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t) ->
  t
(** Parameter-free layer from any differentiable function.  [?batch]
    supplies the batched inference path; omitted, [forward_batch]
    raises.  [?kind] (default {!Opaque}) labels the spec for
    introspection. *)

val relu : t
val leaky_relu : float -> t
val sigmoid : t
val tanh_ : t
val maxpool2 : t

val seq : t list -> t
(** Left-to-right composition; parameters concatenate in order. *)

val num_params : t -> int
(** Total scalar parameter count. *)

(** {1 Persistence} *)

val state : t -> Dco3d_tensor.Tensor.t list
(** Snapshot of parameter tensors (copies, ordered as [params]). *)

val load_state : t -> Dco3d_tensor.Tensor.t list -> unit
(** Restore a snapshot in place.
    @raise Invalid_argument on arity or shape mismatch. *)
