(** The pseudo-3D global placer — our stand-in for ICC2's
    [place_opt] stage inside Pin-3D.

    Pipeline (FastPlace-style):
    + min-cut tier bipartition ({!Partition}),
    + joint quadratic placement of (x, y) over both tiers (conjugate
      gradient on a hybrid clique/star Laplacian with fixed IO pads),
    + alternated density-driven spreading per tier (utilization-
      proportional bin stretching) and anchored re-solves,
    + row legalization per tier.

    Every Table-I knob ({!Params.t}) is interpreted here: density
    targets bound the spreader, congestion knobs inflate cells in
    pin-dense regions (trading wirelength for congestion relief),
    efforts buy quadratic-placement rounds and spreading iterations. *)

val quadratic_place :
  ?anchor_weight:float ->
  ?anchors:(float array * float array) ->
  ?cg_iters:int ->
  Placement.t ->
  unit
(** Solve the joint QP and write cell (x, y) in place.  [anchors]
    attaches pseudo-nets of weight [anchor_weight] pulling each cell to
    the given coordinates (the FastPlace feedback loop). *)

val spread :
  ?iterations:int ->
  ?damping:float ->
  target_density:float ->
  inflation:float array option ->
  Placement.t ->
  unit
(** Per-tier utilization-proportional bin stretching until the peak bin
    utilization approaches [target_density].  [inflation] scales each
    cell's area when computing utilization (congestion-driven cell
    inflation); [None] means no inflation. *)

val legalize : ?max_row_search:int -> Placement.t -> unit
(** Snap cells to standard-cell rows per tier and remove horizontal
    overlap (greedy left-to-right packing, spilling into neighbouring
    rows when a row overfills). *)

val legal_check : Placement.t -> (unit, string) result
(** Verify row alignment and the absence of same-tier overlaps
    (macros exempt from row alignment). *)

val pin_inflation : Placement.t -> float
(** Mean per-cell inflation factor used by congestion-driven modes
    (diagnostic). *)

val global_place :
  seed:int ->
  params:Params.t ->
  Dco3d_netlist.Netlist.t ->
  Floorplan.t ->
  Placement.t
(** Run the full pipeline and return a legalized 3D global placement.
    Deterministic in [(seed, params, netlist)]. *)

val relieve_hot_nets :
  ?quantile:float -> ?fraction:float -> Placement.t -> int
(** One pass of hotspot relief: relocate whole single-GCell nets from
    the top-[1-quantile] wire-demand bins into a cooler neighbouring
    bin (see the implementation comment for why this is the
    near-zero-wirelength congestion move).  Returns the number of nets
    moved.  Used by the congestion-driven placement mode and by the
    tests. *)

val perturb :
  ?seed:int -> ?fraction:float -> ?max_dist:float -> Placement.t ->
  Placement.t
(** A fresh placement with a seeded random [fraction] (default 0.05)
    of the standard cells moved by up to [max_dist] um in each axis
    (default: half a GCell width), clamped to the die; macros stay
    put.  Deterministic in [(seed, placement)].  Models the small
    placement deltas between consecutive routing runs — the
    warm-start router and its benchmarks exercise exactly this. *)
