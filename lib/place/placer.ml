module Nl = Dco3d_netlist.Netlist
module Cl = Dco3d_netlist.Cell_lib
module Rng = Dco3d_tensor.Rng
module Linalg = Dco3d_tensor.Linalg
module Obs = Dco3d_obs.Obs

(* ------------------------------------------------------------------ *)
(* Quadratic placement                                                 *)
(* ------------------------------------------------------------------ *)

(* The connectivity Laplacian is never materialized: we keep flat edge
   arrays and implement the CG matvec directly over them.  Nets with at
   most 4 pins expand to cliques, larger nets get a star node (an extra
   variable) — the standard hybrid model. *)
type qp_system = {
  n_vars : int;  (** cells + star nodes *)
  e_i : int array;
  e_j : int array;
  e_w : float array;
  (* edges to fixed terminals (IO pads): variable, weight, coordinate *)
  f_i : int array;
  f_w : float array;
  f_x : float array;
  f_y : float array;
}

let build_system (p : Placement.t) =
  let nl = p.nl in
  let n = Nl.n_cells nl in
  let e_i = ref [] and e_j = ref [] and e_w = ref [] in
  let f_i = ref [] and f_w = ref [] and f_x = ref [] and f_y = ref [] in
  let n_vars = ref n in
  let add_edge a b w =
    match (a, b) with
    | `Var i, `Var j ->
        e_i := i :: !e_i;
        e_j := j :: !e_j;
        e_w := w :: !e_w
    | `Var i, `Fix (x, y) | `Fix (x, y), `Var i ->
        f_i := i :: !f_i;
        f_w := w :: !f_w;
        f_x := x :: !f_x;
        f_y := y :: !f_y
    | `Fix _, `Fix _ -> ()
  in
  let node_of = function
    | Nl.Cell c -> `Var c
    | Nl.Io i -> `Fix (p.Placement.io_x.(i), p.Placement.io_y.(i))
  in
  List.iter
    (fun (net : Nl.net) ->
      let pins = Array.append [| net.Nl.driver |] net.Nl.sinks in
      let deg = Array.length pins in
      if deg >= 2 then
        if deg <= 4 then begin
          let w = 1. /. float_of_int (deg - 1) in
          for a = 0 to deg - 2 do
            for b = a + 1 to deg - 1 do
              add_edge (node_of pins.(a)) (node_of pins.(b)) w
            done
          done
        end
        else begin
          let star = !n_vars in
          incr n_vars;
          let w = float_of_int deg /. float_of_int (deg - 1) /. 2. in
          Array.iter (fun pin -> add_edge (`Var star) (node_of pin) w) pins
        end)
    (Nl.signal_nets nl);
  {
    n_vars = !n_vars;
    e_i = Array.of_list !e_i;
    e_j = Array.of_list !e_j;
    e_w = Array.of_list !e_w;
    f_i = Array.of_list !f_i;
    f_w = Array.of_list !f_w;
    f_x = Array.of_list !f_x;
    f_y = Array.of_list !f_y;
  }

(* CG iteration totals are jobs-invariant: the solve is sequential and
   its trajectory depends only on the system being solved. *)
let c_cg_iters = Obs.counter "place/cg_iters"
let c_cg_solves = Obs.counter "place/cg_solves"

(* Terminal-status counters: every solve bumps exactly one of these, so
   a non-zero place/cg_breakdowns is distinguishable from solves that
   merely hit the iteration budget. *)
let c_cg_converged = Obs.counter "place/cg_converged"
let c_cg_max_iter = Obs.counter "place/cg_max_iter"
let c_cg_breakdowns = Obs.counter "place/cg_breakdowns"

let count_cg_status = function
  | Linalg.Converged -> Obs.incr c_cg_converged
  | Linalg.Max_iter -> Obs.incr c_cg_max_iter
  | Linalg.Breakdown -> Obs.incr c_cg_breakdowns

let quadratic_place ?(anchor_weight = 0.) ?anchors ?(cg_iters = 60)
    (p : Placement.t) =
  let nl = p.nl in
  let n = Nl.n_cells nl in
  let sys = build_system p in
  let nv = sys.n_vars in
  let cx = p.Placement.fp.Floorplan.width /. 2. in
  let cy = p.Placement.fp.Floorplan.height /. 2. in
  (* weak pull to the die center keeps the system strictly PD even for
     floating subgraphs *)
  let eps = 1e-4 in
  let diag = Array.make nv eps in
  let ne = Array.length sys.e_i in
  for k = 0 to ne - 1 do
    diag.(sys.e_i.(k)) <- diag.(sys.e_i.(k)) +. sys.e_w.(k);
    diag.(sys.e_j.(k)) <- diag.(sys.e_j.(k)) +. sys.e_w.(k)
  done;
  let nf = Array.length sys.f_i in
  for k = 0 to nf - 1 do
    diag.(sys.f_i.(k)) <- diag.(sys.f_i.(k)) +. sys.f_w.(k)
  done;
  (match anchors with
  | Some _ ->
      for c = 0 to n - 1 do
        diag.(c) <- diag.(c) +. anchor_weight
      done
  | None -> ());
  let matvec v =
    let out = Array.make nv 0. in
    for i = 0 to nv - 1 do
      out.(i) <- diag.(i) *. v.(i)
    done;
    for k = 0 to ne - 1 do
      let i = sys.e_i.(k) and j = sys.e_j.(k) and w = sys.e_w.(k) in
      out.(i) <- out.(i) -. (w *. v.(j));
      out.(j) <- out.(j) -. (w *. v.(i))
    done;
    out
  in
  let solve_axis fixed_coord anchor_coord init =
    let b = Array.make nv 0. in
    for i = 0 to nv - 1 do
      b.(i) <- eps *. (if fixed_coord == sys.f_x then cx else cy)
    done;
    for k = 0 to nf - 1 do
      b.(sys.f_i.(k)) <- b.(sys.f_i.(k)) +. (sys.f_w.(k) *. fixed_coord.(k))
    done;
    (match anchors with
    | Some _ ->
        for c = 0 to n - 1 do
          b.(c) <- b.(c) +. (anchor_weight *. anchor_coord.(c))
        done
    | None -> ());
    Obs.with_span "cg_solve" (fun () ->
        let iters = ref 0 in
        let status = ref Linalg.Converged in
        let x =
          Linalg.conjugate_gradient ~max_iter:cg_iters ~tol:1e-6
            ~iterations_out:iters ~status_out:status matvec b init
        in
        Obs.incr c_cg_solves;
        Obs.incr ~by:!iters c_cg_iters;
        count_cg_status !status;
        x)
  in
  let ax, ay =
    match anchors with Some (ax, ay) -> (ax, ay) | None -> ([||], [||])
  in
  let init_x = Array.make nv cx and init_y = Array.make nv cy in
  Array.blit p.Placement.x 0 init_x 0 n;
  Array.blit p.Placement.y 0 init_y 0 n;
  let xs = solve_axis sys.f_x ax init_x in
  let ys = solve_axis sys.f_y ay init_y in
  Array.blit xs 0 p.Placement.x 0 n;
  Array.blit ys 0 p.Placement.y 0 n;
  Placement.clamp_to_die p

(* ------------------------------------------------------------------ *)
(* Spreading                                                           *)
(* ------------------------------------------------------------------ *)

let cell_eff_area (p : Placement.t) inflation c =
  let a = Nl.cell_area p.nl c in
  match inflation with None -> a | Some f -> a *. f.(c)

(* Utilization per bin for one tier with optional inflation. *)
let utilization (p : Placement.t) ~tier ~nx ~ny inflation =
  let fp = p.Placement.fp in
  let bw = fp.Floorplan.width /. float_of_int nx in
  let bh = fp.Floorplan.height /. float_of_int ny in
  let u = Array.make_matrix ny nx 0. in
  let n = Nl.n_cells p.nl in
  for c = 0 to n - 1 do
    if p.Placement.tier.(c) = tier then begin
      let gx =
        max 0 (min (nx - 1) (int_of_float (p.Placement.x.(c) /. bw)))
      in
      let gy =
        max 0 (min (ny - 1) (int_of_float (p.Placement.y.(c) /. bh)))
      in
      u.(gy).(gx) <- u.(gy).(gx) +. cell_eff_area p inflation c
    end
  done;
  let bin_area = bw *. bh in
  for gy = 0 to ny - 1 do
    for gx = 0 to nx - 1 do
      u.(gy).(gx) <- u.(gy).(gx) /. bin_area
    done
  done;
  u

let peak_utilization u =
  Array.fold_left (fun acc row -> Array.fold_left Float.max acc row) 0. u

(* Utilization-proportional 1-D stretching of one lane of bins: crowded
   bins widen, empty bins shrink; cell coordinates remap linearly within
   their bin.  [relief] controls gentleness (larger = gentler). *)
let stretch_lane ~extent ~n_bins ~relief utils coords members damping =
  let total = extent in
  let weights = Array.map (fun u -> u +. relief) utils in
  let wsum = Array.fold_left ( +. ) 0. weights in
  if wsum > 0. then begin
    let new_left = Array.make (n_bins + 1) 0. in
    for i = 0 to n_bins - 1 do
      new_left.(i + 1) <- new_left.(i) +. (weights.(i) /. wsum *. total)
    done;
    let bin_w = extent /. float_of_int n_bins in
    List.iter
      (fun c ->
        let x = coords.(c) in
        let b = max 0 (min (n_bins - 1) (int_of_float (x /. bin_w))) in
        let t = (x -. (float_of_int b *. bin_w)) /. bin_w in
        let t = Float.max 0. (Float.min 1. t) in
        let mapped = new_left.(b) +. (t *. (new_left.(b + 1) -. new_left.(b))) in
        coords.(c) <- x +. (damping *. (mapped -. x)))
      members
  end

let spread ?(iterations = 16) ?(damping = 0.6) ~target_density ~inflation
    (p : Placement.t) =
  let fp = p.Placement.fp in
  let nx = fp.Floorplan.gcell_nx and ny = fp.Floorplan.gcell_ny in
  let bw = fp.Floorplan.width /. float_of_int nx in
  let bh = fp.Floorplan.height /. float_of_int ny in
  let n = Nl.n_cells p.nl in
  let target = Float.max 0.2 target_density in
  (* deterministic sub-bin jitter so coincident cells (e.g. a fresh
     all-at-center placement) can separate — the lane remap is a pure
     function of the coordinate and would otherwise keep ties forever *)
  for c = 0 to n - 1 do
    let h = (c * 2654435761) land 0xFFFF in
    let jx = (float_of_int (h land 0xFF) /. 255.) -. 0.5 in
    let jy = (float_of_int ((h lsr 8) land 0xFF) /. 255.) -. 0.5 in
    p.Placement.x.(c) <- p.Placement.x.(c) +. (0.02 *. bw *. jx);
    p.Placement.y.(c) <- p.Placement.y.(c) +. (0.02 *. bh *. jy)
  done;
  for tier = 0 to Floorplan.n_tiers - 1 do
    let iter = ref 0 in
    let go = ref true in
    while !go && !iter < iterations do
      incr iter;
      let u = utilization p ~tier ~nx ~ny inflation in
      if peak_utilization u <= target *. 1.05 then go := false
      else begin
        (* bucket cells by row lane (for x stretch) and column lane *)
        let by_row = Array.make ny [] in
        let by_col = Array.make nx [] in
        for c = 0 to n - 1 do
          if p.Placement.tier.(c) = tier then begin
            let gy =
              max 0 (min (ny - 1) (int_of_float (p.Placement.y.(c) /. bh)))
            in
            let gx =
              max 0 (min (nx - 1) (int_of_float (p.Placement.x.(c) /. bw)))
            in
            by_row.(gy) <- c :: by_row.(gy);
            by_col.(gx) <- c :: by_col.(gx)
          end
        done;
        let relief = 0.75 *. target in
        for gy = 0 to ny - 1 do
          stretch_lane ~extent:fp.Floorplan.width ~n_bins:nx ~relief u.(gy)
            p.Placement.x by_row.(gy) damping
        done;
        let u' = utilization p ~tier ~nx ~ny inflation in
        for gx = 0 to nx - 1 do
          let col = Array.init ny (fun gy -> u'.(gy).(gx)) in
          stretch_lane ~extent:fp.Floorplan.height ~n_bins:ny ~relief col
            p.Placement.y by_col.(gx) damping
        done
      end
    done
  done;
  Placement.clamp_to_die p

(* ------------------------------------------------------------------ *)
(* Legalization                                                        *)
(* ------------------------------------------------------------------ *)

type segment = { s_lo : float; s_hi : float; mutable frontier : float }

let build_segments (p : Placement.t) tier =
  let fp = p.Placement.fp in
  let rows = Array.make fp.Floorplan.n_rows [] in
  (* subtract macro footprints *)
  let macros = ref [] in
  for c = 0 to Nl.n_cells p.nl - 1 do
    if Nl.is_macro p.nl c && p.Placement.tier.(c) = tier then begin
      let m = p.nl.Nl.masters.(c) in
      let w = m.Cl.width and h = m.Cl.height in
      macros :=
        ( p.Placement.x.(c) -. (w /. 2.),
          p.Placement.x.(c) +. (w /. 2.),
          p.Placement.y.(c) -. (h /. 2.),
          p.Placement.y.(c) +. (h /. 2.) )
        :: !macros
    end
  done;
  for r = 0 to fp.Floorplan.n_rows - 1 do
    let ry = Floorplan.row_y fp r in
    let y0 = ry -. (Cl.row_height /. 2.) and y1 = ry +. (Cl.row_height /. 2.) in
    (* blocked x-intervals in this row *)
    let blocked =
      List.filter_map
        (fun (mx0, mx1, my0, my1) ->
          if my1 > y0 +. 1e-9 && my0 < y1 -. 1e-9 then Some (mx0, mx1) else None)
        !macros
      |> List.sort compare
    in
    let segs = ref [] in
    let cursor = ref 0. in
    List.iter
      (fun (bx0, bx1) ->
        if bx0 > !cursor +. 1e-9 then
          segs := { s_lo = !cursor; s_hi = bx0; frontier = !cursor } :: !segs;
        cursor := Float.max !cursor bx1)
      blocked;
    if fp.Floorplan.width > !cursor +. 1e-9 then
      segs :=
        { s_lo = !cursor; s_hi = fp.Floorplan.width; frontier = !cursor }
        :: !segs;
    rows.(r) <- List.rev !segs
  done;
  rows

(* Push overlapping same-tier macros apart (there are at most a handful
   per design, so an iterative pairwise separation is plenty). *)
let separate_macros (p : Placement.t) =
  let n = Nl.n_cells p.nl in
  let macros = ref [] in
  for c = 0 to n - 1 do
    if Nl.is_macro p.nl c then macros := c :: !macros
  done;
  let macros = Array.of_list !macros in
  let half c =
    let m = p.nl.Nl.masters.(c) in
    (m.Cl.width /. 2., m.Cl.height /. 2.)
  in
  for _iter = 1 to 64 do
    for a = 0 to Array.length macros - 1 do
      for b = a + 1 to Array.length macros - 1 do
        let i = macros.(a) and j = macros.(b) in
        if p.Placement.tier.(i) = p.Placement.tier.(j) then begin
          let hwi, hhi = half i and hwj, hhj = half j in
          let dx = p.Placement.x.(j) -. p.Placement.x.(i) in
          let dy = p.Placement.y.(j) -. p.Placement.y.(i) in
          let ox = hwi +. hwj -. abs_float dx in
          let oy = hhi +. hhj -. abs_float dy in
          if ox > 0. && oy > 0. then
            if ox < oy then begin
              let push = (ox /. 2.) +. 1e-3 in
              let s = if dx >= 0. then 1. else -1. in
              p.Placement.x.(i) <- p.Placement.x.(i) -. (s *. push);
              p.Placement.x.(j) <- p.Placement.x.(j) +. (s *. push)
            end
            else begin
              let push = (oy /. 2.) +. 1e-3 in
              let s = if dy >= 0. then 1. else -1. in
              p.Placement.y.(i) <- p.Placement.y.(i) -. (s *. push);
              p.Placement.y.(j) <- p.Placement.y.(j) +. (s *. push)
            end
        end
      done
    done;
    Placement.clamp_to_die p
  done

let legalize ?(max_row_search = 24) (p : Placement.t) =
  let fp = p.Placement.fp in
  let n = Nl.n_cells p.nl in
  separate_macros p;
  for tier = 0 to Floorplan.n_tiers - 1 do
    let rows = build_segments p tier in
    (* capacity-based assignment: a segment accepts a cell while its
       total assigned width fits, independent of order — no space is
       wasted behind a packing frontier *)
    let seg_used = Array.map (List.map (fun _ -> ref 0.)) rows in
    let seg_cells = Array.map (List.map (fun _ -> ref [])) rows in
    let cells =
      List.init n Fun.id
      |> List.filter (fun c ->
             p.Placement.tier.(c) = tier && not (Nl.is_macro p.nl c))
    in
    List.iter
      (fun c ->
        let w = p.nl.Nl.masters.(c).Cl.width in
        let desired_x = p.Placement.x.(c) in
        let best = ref None in
        let consider r =
          if r >= 0 && r < fp.Floorplan.n_rows then
            List.iteri
              (fun k seg ->
                let used = List.nth seg_used.(r) k in
                if !used +. w <= seg.s_hi -. seg.s_lo +. 1e-9 then begin
                  let dy = abs_float (Floorplan.row_y fp r -. p.Placement.y.(c)) in
                  (* x-cost: distance from the desired x to the segment *)
                  let dx =
                    if desired_x < seg.s_lo then seg.s_lo -. desired_x
                    else if desired_x > seg.s_hi then desired_x -. seg.s_hi
                    else 0.
                  in
                  (* crowding term keeps rows balanced *)
                  let fill = !used /. Float.max 1e-9 (seg.s_hi -. seg.s_lo) in
                  let cost = (2. *. dy) +. dx +. (0.3 *. fill) in
                  match !best with
                  | Some (bc, _, _) when bc <= cost -> ()
                  | _ -> best := Some (cost, r, k)
                end)
              rows.(r)
        in
        let r0 = Floorplan.row_of fp p.Placement.y.(c) in
        let radius = ref 0 in
        let extra = ref (-1) in
        while !extra <> 0 && !radius < fp.Floorplan.n_rows do
          (if !radius = 0 then consider r0
           else begin
             consider (r0 - !radius);
             consider (r0 + !radius)
           end);
          if !best <> None then
            if !extra < 0 then extra := min 2 max_row_search else decr extra;
          incr radius
        done;
        match !best with
        | Some (_, r, k) ->
            let used = List.nth seg_used.(r) k in
            used := !used +. w;
            let lst = List.nth seg_cells.(r) k in
            lst := c :: !lst;
            p.Placement.y.(c) <- Floorplan.row_y fp r
        | None ->
            (* the die is genuinely full: keep the clamped position *)
            p.Placement.x.(c) <-
              Float.max (w /. 2.)
                (Float.min (fp.Floorplan.width -. (w /. 2.)) p.Placement.x.(c)))
      cells;
    (* pack each segment: forward sweep at desired positions, backward
       sweep to pull any right-edge overhang back in (all cells fit by
       the capacity invariant) *)
    Array.iteri
      (fun r segs ->
        List.iteri
          (fun k seg ->
            let members =
              List.sort
                (fun a b -> compare p.Placement.x.(a) p.Placement.x.(b))
                !(List.nth seg_cells.(r) k)
              |> Array.of_list
            in
            let m = Array.length members in
            if m > 0 then begin
              let xs = Array.make m 0. in
              let cur = ref seg.s_lo in
              for i = 0 to m - 1 do
                let c = members.(i) in
                let w = p.nl.Nl.masters.(c).Cl.width in
                let want = p.Placement.x.(c) -. (w /. 2.) in
                xs.(i) <- Float.max !cur want;
                cur := xs.(i) +. w
              done;
              (* backward fix-up *)
              let limit = ref seg.s_hi in
              for i = m - 1 downto 0 do
                let c = members.(i) in
                let w = p.nl.Nl.masters.(c).Cl.width in
                if xs.(i) +. w > !limit then xs.(i) <- !limit -. w;
                if xs.(i) < seg.s_lo then xs.(i) <- seg.s_lo;
                limit := xs.(i)
              done;
              for i = 0 to m - 1 do
                let c = members.(i) in
                let w = p.nl.Nl.masters.(c).Cl.width in
                p.Placement.x.(c) <- xs.(i) +. (w /. 2.)
              done
            end)
          segs)
      rows
  done

let legal_check (p : Placement.t) =
  let fp = p.Placement.fp in
  let n = Nl.n_cells p.nl in
  let exception Bad of string in
  try
    (* row alignment *)
    for c = 0 to n - 1 do
      if not (Nl.is_macro p.nl c) then begin
        let r = Floorplan.row_of fp p.Placement.y.(c) in
        if abs_float (Floorplan.row_y fp r -. p.Placement.y.(c)) > 1e-6 then
          raise (Bad (Printf.sprintf "cell %d off-row (y = %g)" c p.Placement.y.(c)))
      end
    done;
    (* same-tier, same-row overlap *)
    for tier = 0 to Floorplan.n_tiers - 1 do
      let by_row = Hashtbl.create 97 in
      for c = 0 to n - 1 do
        if p.Placement.tier.(c) = tier && not (Nl.is_macro p.nl c) then begin
          let r = Floorplan.row_of fp p.Placement.y.(c) in
          Hashtbl.replace by_row r
            (c :: Option.value ~default:[] (Hashtbl.find_opt by_row r))
        end
      done;
      Hashtbl.iter
        (fun r cells ->
          let sorted =
            List.sort (fun a b -> compare p.Placement.x.(a) p.Placement.x.(b)) cells
          in
          let edge = ref neg_infinity in
          List.iter
            (fun c ->
              let w = p.nl.Nl.masters.(c).Cl.width in
              let x0 = p.Placement.x.(c) -. (w /. 2.) in
              if x0 < !edge -. 1e-6 then
                raise (Bad (Printf.sprintf "overlap in tier %d row %d at cell %d" tier r c));
              edge := x0 +. w)
            sorted)
        by_row
    done;
    Ok ()
  with Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Congestion-driven inflation                                         *)
(* ------------------------------------------------------------------ *)

(* RUDY-style wire-demand map over the GCell grid (both tiers combined;
   spreading only moves (x, y)).  A local re-implementation: the
   congestion library sits above this one in the dependency order. *)
let wire_demand_map (p : Placement.t) =
  let fp = p.Placement.fp in
  let nx = fp.Floorplan.gcell_nx and ny = fp.Floorplan.gcell_ny in
  let bw = fp.Floorplan.width /. float_of_int nx in
  let bh = fp.Floorplan.height /. float_of_int ny in
  let map = Array.make_matrix ny nx 0. in
  List.iter
    (fun (net : Nl.net) ->
      let x0, y0, x1, y1 = Placement.net_bbox p net in
      let w = Float.max 0.1 (x1 -. x0) and h = Float.max 0.1 (y1 -. y0) in
      let weight = (1. /. w) +. (1. /. h) in
      let gx0 = max 0 (min (nx - 1) (int_of_float (x0 /. bw))) in
      let gx1 = max 0 (min (nx - 1) (int_of_float (x1 /. bw))) in
      let gy0 = max 0 (min (ny - 1) (int_of_float (y0 /. bh))) in
      let gy1 = max 0 (min (ny - 1) (int_of_float (y1 /. bh))) in
      for gy = gy0 to gy1 do
        for gx = gx0 to gx1 do
          map.(gy).(gx) <- map.(gy).(gx) +. weight
        done
      done)
    (Nl.signal_nets p.Placement.nl);
  map

let demand_quantile map q =
  let flat =
    Array.to_list map |> List.concat_map Array.to_list |> Array.of_list
  in
  Array.sort compare flat;
  let n = Array.length flat in
  if n = 0 then 0.
  else flat.(max 0 (min (n - 1) (int_of_float (q *. float_of_int n))))

(* One hotspot-inflation step: cells sitting in the top-demand bins get
   their effective area bumped, so the next spreading pass pushes their
   neighbourhoods apart — surgical relief, small wirelength cost (the
   behaviour of ICC2's congestion-driven placement, which Table III
   shows costs only ~1 % WL). *)
let inflate_hotspots ?(quantile = 0.88) (p : Placement.t) inflation ~bump ~pin_aware =
  let fp = p.Placement.fp in
  let nx = fp.Floorplan.gcell_nx and ny = fp.Floorplan.gcell_ny in
  let bw = fp.Floorplan.width /. float_of_int nx in
  let bh = fp.Floorplan.height /. float_of_int ny in
  let demand = wire_demand_map p in
  let thr = demand_quantile demand quantile in
  let nl = p.Placement.nl in
  let n = Nl.n_cells nl in
  let pins c =
    float_of_int
      (Array.length nl.Nl.cell_fanin.(c)
      + if nl.Nl.cell_fanout.(c) >= 0 then 1 else 0)
  in
  let avg_pins =
    let acc = ref 0. in
    for c = 0 to n - 1 do
      acc := !acc +. pins c
    done;
    !acc /. float_of_int (max 1 n)
  in
  for c = 0 to n - 1 do
    let gx = max 0 (min (nx - 1) (int_of_float (p.Placement.x.(c) /. bw))) in
    let gy = max 0 (min (ny - 1) (int_of_float (p.Placement.y.(c) /. bh))) in
    if demand.(gy).(gx) > thr then begin
      let pin_term =
        if pin_aware then 0.5 *. Float.max 0. ((pins c /. avg_pins) -. 1.)
        else 0.
      in
      inflation.(c) <-
        Float.min 3.0 (inflation.(c) *. (1. +. bump +. (bump *. pin_term)))
    end
  done

let pin_inflation (p : Placement.t) =
  let inflation = Array.make (Nl.n_cells p.Placement.nl) 1. in
  inflate_hotspots p inflation ~bump:0.25 ~pin_aware:true;
  Array.fold_left ( +. ) 0. inflation
  /. float_of_int (max 1 (Array.length inflation))

(* ------------------------------------------------------------------ *)
(* Full pipeline                                                       *)
(* ------------------------------------------------------------------ *)

(* Global spreading target: congestion knobs do NOT drag this down —
   they drive the surgical hotspot relief below instead, which is how
   the real tool keeps its congestion mode within ~1 % wirelength. *)
let effective_target (params : Params.t) =
  let t = ref params.Params.max_density in
  (* low-power modes pack tighter (shorter wires, less switching cap) *)
  if params.Params.low_power_placement then t := !t +. 0.05;
  t := !t +. (0.01 *. float_of_int params.Params.enhanced_low_power_effort);
  Float.max 0.70 (Float.min 0.95 !t)

(* Surgical congestion relief: relocate {e whole single-bin nets} out
   of the hottest-demand bins into a cooler neighbouring bin.  Because
   every pin of the net moves by the same bin offset, the net's own
   wirelength is unchanged and only the (few) other nets touching the
   moved cells stretch by one GCell — demand moves wholesale at near-zero
   wirelength cost, which is exactly the trade ICC2's congestion mode
   makes (Table III shows ~1 % WL for Pin-3D+Cong.). *)
let relieve_hot_nets ?(quantile = 0.92) ?(fraction = 0.5) (p : Placement.t) :
    int =
  let fp = p.Placement.fp in
  let nx = fp.Floorplan.gcell_nx and ny = fp.Floorplan.gcell_ny in
  let bw = fp.Floorplan.width /. float_of_int nx in
  let bh = fp.Floorplan.height /. float_of_int ny in
  let demand = wire_demand_map p in
  let thr = demand_quantile demand quantile in
  let nl = p.Placement.nl in
  (* nets fully contained in one bin, grouped by bin *)
  let contained = Array.make_matrix ny nx [] in
  List.iter
    (fun (net : Nl.net) ->
      let x0, y0, x1, y1 = Placement.net_bbox p net in
      let gx0 = max 0 (min (nx - 1) (int_of_float (x0 /. bw))) in
      let gx1 = max 0 (min (nx - 1) (int_of_float (x1 /. bw))) in
      let gy0 = max 0 (min (ny - 1) (int_of_float (y0 /. bh))) in
      let gy1 = max 0 (min (ny - 1) (int_of_float (y1 /. bh))) in
      if gx0 = gx1 && gy0 = gy1 then begin
        let w = Float.max 0.1 (x1 -. x0) and h = Float.max 0.1 (y1 -. y0) in
        let weight = (1. /. w) +. (1. /. h) in
        contained.(gy0).(gx0) <- (net, weight) :: contained.(gy0).(gx0)
      end)
    (Nl.signal_nets nl);
  let moved = Array.make (Nl.n_cells nl) false in
  let n_moved = ref 0 in
  for gy = 0 to ny - 1 do
    for gx = 0 to nx - 1 do
      if demand.(gy).(gx) > thr then begin
        (* coolest 4-neighbour *)
        let best = ref None in
        List.iter
          (fun (dx, dy) ->
            let gx' = gx + dx and gy' = gy + dy in
            if gx' >= 0 && gx' < nx && gy' >= 0 && gy' < ny then
              match !best with
              | Some (d, _, _) when d <= demand.(gy').(gx') -> ()
              | _ -> best := Some (demand.(gy').(gx'), dx, dy))
          [ (-1, 0); (1, 0); (0, -1); (0, 1) ];
        match !best with
        | Some (d_nb, dx, dy) when d_nb < demand.(gy).(gx) ->
            let budget = ref (fraction *. (demand.(gy).(gx) -. thr)) in
            let ox = float_of_int dx *. bw and oy = float_of_int dy *. bh in
            List.iter
              (fun ((net : Nl.net), weight) ->
                (* keep the move strictly balancing *)
                if
                  !budget > 0.
                  && demand.(gy + dy).(gx + dx) +. weight
                     < demand.(gy).(gx) -. weight
                then begin
                  (* move every cell pin of the net by one bin pitch,
                     each cell at most once per pass *)
                  let cells = ref [] in
                  let collect = function
                    | Nl.Cell c when (not moved.(c)) && not (Nl.is_macro nl c) ->
                        cells := c :: !cells
                    | Nl.Cell _ | Nl.Io _ -> ()
                  in
                  collect net.Nl.driver;
                  Array.iter collect net.Nl.sinks;
                  if !cells <> [] then begin
                    incr n_moved;
                    List.iter
                      (fun c ->
                        moved.(c) <- true;
                        p.Placement.x.(c) <- p.Placement.x.(c) +. ox;
                        p.Placement.y.(c) <- p.Placement.y.(c) +. oy)
                      !cells;
                    budget := !budget -. weight;
                    demand.(gy).(gx) <- demand.(gy).(gx) -. weight;
                    demand.(gy + dy).(gx + dx) <-
                      demand.(gy + dy).(gx + dx) +. weight
                  end
                end)
              contained.(gy).(gx)
        | Some _ | None -> ()
      end
    done
  done;
  Placement.clamp_to_die p;
  !n_moved

(* Pin-saturation inflation: cells in GCells whose pin density exceeds
   ~the router's saturation knee get inflated, so the final spreading
   pass pushes exactly the clusters that are losing routing tracks to
   pin access.  Mirrors Router's pin-blockage model (saturation = 2.5x
   the design's mean pin density). *)
let pin_saturation_inflation (p : Placement.t) ~strength =
  let fp = p.Placement.fp in
  let nx = fp.Floorplan.gcell_nx and ny = fp.Floorplan.gcell_ny in
  let bw = fp.Floorplan.width /. float_of_int nx in
  let bh = fp.Floorplan.height /. float_of_int ny in
  let nl = p.Placement.nl in
  let bins = Array.init Floorplan.n_tiers (fun _ -> Array.make_matrix ny nx 0.) in
  let add e =
    let x, y, t = Placement.endpoint_position p e in
    let gx = max 0 (min (nx - 1) (int_of_float (x /. bw))) in
    let gy = max 0 (min (ny - 1) (int_of_float (y /. bh))) in
    bins.(t).(gy).(gx) <- bins.(t).(gy).(gx) +. 1.
  in
  List.iter
    (fun (net : Nl.net) ->
      add net.Nl.driver;
      Array.iter add net.Nl.sinks)
    (Nl.signal_nets nl);
  let mean = ref 0. in
  Array.iter
    (fun tb -> Array.iter (fun row -> Array.iter (fun v -> mean := !mean +. v) row) tb)
    bins;
  let mean = !mean /. float_of_int (Floorplan.n_tiers * nx * ny) in
  let sat = Float.max 1e-9 (2.5 *. mean) in
  let infl = Array.make (Nl.n_cells nl) 1. in
  for c = 0 to Nl.n_cells nl - 1 do
    let gx = max 0 (min (nx - 1) (int_of_float (p.Placement.x.(c) /. bw))) in
    let gy = max 0 (min (ny - 1) (int_of_float (p.Placement.y.(c) /. bh))) in
    let d = bins.(p.Placement.tier.(c)).(gy).(gx) in
    if d > 0.8 *. sat then
      infl.(c) <- Float.min 2.0 (1. +. (strength *. (d /. sat)))
  done;
  infl

let congestion_mode (params : Params.t) =
  params.Params.cong_restruct_effort > 0
  || params.Params.pin_density_aware
  || params.Params.global_route_based
  || params.Params.enable_irap

let global_place ~seed ~params nl fp =
  Obs.with_span "place" (fun () ->
  let p = Placement.create nl fp in
  let rng = Rng.create (seed lxor 0x9e3779b9) in
  (* tier assignment *)
  let tier = Partition.bipartition ~seed nl in
  Array.blit tier 0 p.Placement.tier 0 (Array.length tier);
  (* initial QP *)
  let cg = 40 + (30 * params.Params.initial_place_effort) in
  quadratic_place ~cg_iters:cg p;
  (* seed-dependent jitter: distinct layouts for the dataset even under
     identical knobs, mirroring run-to-run tool variation *)
  let jitter = 0.35 *. Floorplan.gcell_w fp in
  for c = 0 to Nl.n_cells nl - 1 do
    p.Placement.x.(c) <- p.Placement.x.(c) +. Rng.gaussian ~sigma:jitter rng;
    p.Placement.y.(c) <- p.Placement.y.(c) +. Rng.gaussian ~sigma:jitter rng
  done;
  Placement.clamp_to_die p;
  let target = effective_target params in
  let spread_iters = 10 in
  let rounds =
    1 + params.Params.initial_place_effort
    + (if params.Params.two_pass then 1 else 0)
    + if params.Params.enable_ccd then 1 else 0
  in
  let anchor_w = ref 0.02 in
  for _round = 1 to rounds do
    Obs.with_span "spread" (fun () ->
        spread ~iterations:spread_iters ~target_density:target ~inflation:None p);
    let ax = Array.copy p.Placement.x and ay = Array.copy p.Placement.y in
    quadratic_place ~anchor_weight:!anchor_w ~anchors:(ax, ay) ~cg_iters:cg p;
    anchor_w := !anchor_w *. 2.
  done;
  (* Congestion knobs: the FINAL spreading pass runs with pin-
     saturation inflation so that pin-dense clusters (the ones losing
     routing tracks to pin access) get pushed apart — same pipeline
     shape as the baseline, no extra churn, small wirelength cost. *)
  let final_inflation =
    if congestion_mode params then begin
      let strength =
        Float.min 0.8
          (0.09
          *. (1.
             +. (0.25 *. float_of_int params.Params.cong_restruct_effort)
             +. (0.05 *. float_of_int params.Params.cong_restruct_iterations)
             +. (if params.Params.pin_density_aware then 0.25 else 0.)
             +. if params.Params.global_route_based then 0.15 else 0.))
      in
      Some (pin_saturation_inflation p ~strength)
    end
    else None
  in
  let final_iters = spread_iters + (6 * params.Params.final_place_effort) in
  Obs.with_span "spread" (fun () ->
      spread ~iterations:final_iters ~target_density:target
        ~inflation:final_inflation p);
  Obs.with_span "legalize" (fun () ->
      legalize ~max_row_search:(8 + (3 * params.Params.displacement_threshold)) p);
  p)

(* Deterministic placement perturbation: move a seeded random fraction
   of the standard cells by a bounded jitter, modelling the small
   deltas an incremental placement pass (or an ECO) applies between
   routing runs.  Each cell consumes a fixed number of RNG draws
   whether or not it moves, so the moved set is a function of the seed
   alone.  No legalization: the router only reads GCell-binned
   coordinates, and warm-start benchmarks want sub-GCell and
   cross-GCell moves in controlled proportion. *)
let perturb ?(seed = 0) ?(fraction = 0.05) ?max_dist (p : Placement.t) =
  let q = Placement.copy p in
  let md =
    match max_dist with
    | Some d -> d
    | None -> 0.5 *. Floorplan.gcell_w q.Placement.fp
  in
  let rng = Rng.create (seed lxor 0x7f4a7c15) in
  for c = 0 to Nl.n_cells q.Placement.nl - 1 do
    let roll = Rng.uniform rng in
    let dx = Rng.range rng (-.md) md in
    let dy = Rng.range rng (-.md) md in
    if roll < fraction && not (Nl.is_macro q.Placement.nl c) then begin
      q.Placement.x.(c) <- q.Placement.x.(c) +. dx;
      q.Placement.y.(c) <- q.Placement.y.(c) +. dy
    end
  done;
  Placement.clamp_to_die q;
  q
