(* Shared magic+digest+rename framing for content-addressed cache
   files — the spill tier and the route cache persist through this one
   module so the corruption-handling discipline can't drift. *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let path_of ~dir ~suffix key =
  Filename.concat dir (Digest.to_hex (Digest.string key) ^ suffix)

(* Temp names carry a per-process sequence besides the pid: two threads
   writing the same key concurrently (e.g. the LRU eviction hook vs.
   the shutdown flush in [Server.wait]) would otherwise share one temp
   path and interleave writes — the digest check downgrades that to a
   deleted entry, but the entry is still silently lost. *)
let tmp_seq = Atomic.make 0

let write_file ~magic ~path ~body =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_seq 1)
  in
  try
    let oc = open_out_bin tmp in
    (try
       output_string oc magic;
       output_string oc (Digest.string body);
       output_string oc body;
       close_out oc
     with e ->
       close_out_noerr oc;
       raise e);
    Sys.rename tmp path;
    true
  with Sys_error _ | Unix.Unix_error _ ->
    (* Best-effort: a full or read-only disk must not break the caller. *)
    (try Sys.remove tmp with Sys_error _ -> ());
    false

let discard path = try Sys.remove path with Sys_error _ -> ()

let read_file ~magic ~path =
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then raise Exit;
      let digest = really_input_string ic (String.length (Digest.string "")) in
      let blen = in_channel_length ic - pos_in ic in
      let body = really_input_string ic blen in
      if Digest.string body <> digest then raise Exit;
      body
    with
    | body -> Some body
    | exception (Exit | End_of_file | Failure _ | Sys_error _) ->
        (* Truncated, corrupted, foreign, or unreadable: drop it so the
           next write can install a good copy. *)
        discard path;
        None

let count_entries ~dir ~suffix =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun n e -> if Filename.check_suffix e suffix then n + 1 else n)
        0 entries
  | exception Sys_error _ -> 0

let touch path =
  try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ()

(* LRU is by mtime: [touch] on read hits keeps hot entries young, so
   the oldest files are the coldest.  Eviction works on file names
   alone — a corrupt or foreign [suffix] file still counts against the
   cap and still gets unlinked, so a directory full of damaged
   survivors cannot pin the cache above its bound forever. *)
let evict_lru ~dir ~suffix ~max_entries =
  let max_entries = max 1 max_entries in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      let aged =
        Array.to_list entries
        |> List.filter_map (fun e ->
               if not (Filename.check_suffix e suffix) then None
               else
                 let path = Filename.concat dir e in
                 match Unix.stat path with
                 | st -> Some (st.Unix.st_mtime, path)
                 | exception Unix.Unix_error _ -> None)
      in
      let n = List.length aged in
      if n <= max_entries then 0
      else begin
        (* oldest first; path tie-break keeps the order deterministic
           when a burst of writes lands within one mtime granule *)
        let ordered = List.sort compare aged in
        let doomed = ref (n - max_entries) and evicted = ref 0 in
        List.iter
          (fun (_, path) ->
            if !doomed > 0 then begin
              decr doomed;
              match Sys.remove path with
              | () -> incr evicted
              | exception Sys_error _ -> ()
            end)
          ordered;
        !evicted
      end
