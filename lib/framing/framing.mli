(** Shared on-disk framing for content-addressed cache files.

    Both the serving tier's LRU spill and the route cache persist
    entries as one file per key under a cache directory, framed as

      magic | 16-byte MD5(body) | body

    where [body] is a caller-supplied string (in practice a [Marshal]
    of [(key, value)] — the caller re-checks the stored key after
    unmarshalling, so an MD5 filename collision or a foreign file can
    never serve the wrong value).  Writes go through a temp file +
    rename so a crash mid-write leaves no torn entry; any file that
    fails the magic or digest check on read is deleted and treated as
    a miss.

    All operations are best-effort and never raise on IO failure:
    [write_file] reports success as a bool, [read_file] returns
    [None]. *)

val mkdir_p : string -> unit
(** Create a directory and its parents if missing.
    @raise Unix.Unix_error if a component cannot be created. *)

val path_of : dir:string -> suffix:string -> string -> string
(** [path_of ~dir ~suffix key] is the entry file for [key]:
    [dir]/MD5-hex([key])[suffix]. *)

val write_file : magic:string -> path:string -> body:string -> bool
(** Frame [body] under [magic] and atomically install it at [path]
    (temp file carrying pid + a per-process sequence, then rename).
    [false] if the write failed (disk full, read-only dir, …); a
    failed write leaves no temp file behind. *)

val read_file : magic:string -> path:string -> string option
(** Load and verify a framed file: magic and body digest are checked;
    a missing file is a miss, and a file failing either check is
    deleted and reported as a miss. *)

val discard : string -> unit
(** Best-effort delete (callers use it when the unmarshalled stored
    key does not match the probe key). *)

val count_entries : dir:string -> suffix:string -> int
(** Number of [suffix] entries currently in [dir]; 0 if unreadable. *)

val touch : string -> unit
(** Best-effort mtime bump (to "now") — read hits call this so
    LRU-by-mtime eviction keeps hot entries. *)

val evict_lru : dir:string -> suffix:string -> max_entries:int -> int
(** Delete the oldest-mtime [suffix] entries in [dir] until at most
    [max_entries] remain (the cap is clamped to >= 1 so a fresh write
    always survives its own eviction pass).  Corrupt or foreign
    [suffix] files count against the cap and are evicted like any
    other entry.  Returns the number of files actually deleted; IO
    failures are skipped silently. *)
