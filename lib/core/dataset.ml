module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module Nl = Dco3d_netlist.Netlist
module Fp = Dco3d_place.Floorplan
module Params = Dco3d_place.Params
module Placer = Dco3d_place.Placer
module Router = Dco3d_route.Router
module Route_cache = Dco3d_route.Route_cache
module Fm = Dco3d_congestion.Feature_maps
module Pool = Dco3d_parallel.Pool
module Obs = Dco3d_obs.Obs

let log_src = Logs.Src.create "dco3d.dataset" ~doc:"dataset construction"

module Log = (val Logs.src_log log_src : Logs.LOG)

type sample = {
  f_bottom : T.t;
  f_top : T.t;
  c_bottom : T.t;
  c_top : T.t;
  params : Params.t;
  sample_seed : int;
}

type t = { design : string; nx : int; ny : int; samples : sample array }

let build ?(n_samples = 24) ?(seed = 0) ?route_cache ~route_cfg nl fp =
  let nx = fp.Fp.gcell_nx and ny = fp.Fp.gcell_ny in
  (* Samples are independent layouts, so they build in parallel on the
     domain pool.  Each sample seeds its own RNG stream from its index
     (instead of all samples sharing one sequentially-advanced RNG), so
     the dataset is identical at every DCO3D_JOBS value.

     Parallelism policy: this per-sample region is the ONLY level that
     fans out.  Every kernel a sample calls underneath (placement,
     routing, RUDY, feature maps) sees itself inside a pool region and
     runs inline — Pool v2 enforces one level of parallelism — so the
     machine is never oversubscribed.  Under v1 the nested kernel
     regions queued helper closures behind the busy sample workers and
     the whole build serialized (PR 1's 0.31x dataset_build). *)
  let samples =
    Obs.with_span "dataset/build" @@ fun () ->
    Pool.tabulate ~chunk:1 n_samples (fun i ->
        (* on a pool worker the span stack is empty, so this span starts
           a fresh root on the worker's trace track; on the caller it
           nests under dataset/build *)
        Obs.with_span (Printf.sprintf "sample:%d" i) @@ fun () ->
        let rng = Rng.create ((seed lxor 0x0d5e7) + (0x6a09e667 * (i + 1))) in
        let params = Params.sample rng in
        let sample_seed = seed + (1000 * i) + 17 in
        let p = Placer.global_place ~seed:sample_seed ~params nl fp in
        (* shared routed corpus: identical (netlist, binned placement,
           config) samples — repeated sweeps, other shards — replay
           from the cache bit-identically instead of re-routing *)
        let r = Route_cache.find_or_route ?cache:route_cache ~config:route_cfg p in
        let f_bottom, f_top = Fm.both_dies p ~nx ~ny in
        Log.debug (fun m ->
            m "%s sample %d/%d: overflow %d" nl.Nl.design (i + 1) n_samples
              r.Router.overflow_total);
        (* Congestion labels: the tool's congestion report gives a value
           per GCell.  Pure edge overflow is too sparse a target at our
           scale, so the label adds a small utilization-above-60 % field
           for trainability while keeping the (3x-weighted) overflow
           dominant — overflow is where the pin-blockage physics lives,
           the part a RUDY-style estimator cannot see (Fig. 5c). *)
        let label die =
          let raw =
            T.map2
              (fun util ovf -> Float.max 0. (util -. 0.6) +. (3. *. ovf))
              r.Router.utilization.(die) r.Router.congestion.(die)
          in
          (* smoothing: single-GCell router noise is not a learnable
             target, and the paper's 224x224 ground truth over a large
             die is an effectively smooth field; two cross-kernel passes
             approximate a 5x5 Gaussian *)
          let blur m =
            let h = T.dim m 0 and w = T.dim m 1 in
            T.init [| h; w |] (fun idx ->
                let i = idx.(0) and j = idx.(1) in
                let acc = ref (4. *. T.get2 m i j) and k = ref 4 in
                List.iter
                  (fun (di, dj) ->
                    let i' = i + di and j' = j + dj in
                    if i' >= 0 && i' < h && j' >= 0 && j' < w then begin
                      acc := !acc +. T.get2 m i' j';
                      incr k
                    end)
                  [ (-1, 0); (1, 0); (0, -1); (0, 1) ];
                !acc /. float_of_int !k)
          in
          blur (blur raw)
        in
        {
          f_bottom;
          f_top;
          c_bottom = label 0;
          c_top = label 1;
          params;
          sample_seed;
        })
  in
  { design = nl.Nl.design; nx; ny; samples }

let merge = function
  | [] -> invalid_arg "Dataset.merge: empty list"
  | first :: _ as ds ->
      List.iter
        (fun d ->
          if d.nx <> first.nx || d.ny <> first.ny then
            invalid_arg "Dataset.merge: grid mismatch")
        ds;
      {
        design = String.concat "+" (List.map (fun d -> d.design) ds);
        nx = first.nx;
        ny = first.ny;
        samples = Array.concat (List.map (fun d -> d.samples) ds);
      }

let split ~test_fraction ~seed d =
  if test_fraction < 0. || test_fraction > 1. then
    invalid_arg "Dataset.split: fraction out of range";
  let rng = Rng.create (seed lxor 0x51337) in
  let order = Rng.permutation rng (Array.length d.samples) in
  let n_test =
    int_of_float (Float.round (test_fraction *. float_of_int (Array.length d.samples)))
  in
  let test = Array.init n_test (fun i -> d.samples.(order.(i))) in
  let train =
    Array.init
      (Array.length d.samples - n_test)
      (fun i -> d.samples.(order.(n_test + i)))
  in
  ({ d with samples = train }, { d with samples = test })

let map_sample f s =
  {
    s with
    f_bottom = f s.f_bottom;
    f_top = f s.f_top;
    c_bottom = f s.c_bottom;
    c_top = f s.c_top;
  }

let augment8 s =
  let square = T.dim s.c_bottom 0 = T.dim s.c_bottom 1 in
  let rotations =
    if square then
      [
        Fun.id;
        T.rot90;
        (fun m -> T.rot90 (T.rot90 m));
        (fun m -> T.rot90 (T.rot90 (T.rot90 m)));
      ]
    else [ Fun.id ]
  in
  let flips = [ Fun.id; T.flip_h ] in
  List.concat_map
    (fun rot -> List.map (fun flip m -> flip (rot m)) flips)
    rotations
  |> List.map (fun f -> map_sample f s)

let label_scale d =
  let values = ref [] in
  Array.iter
    (fun s ->
      T.iteri_flat (fun _ v -> if v > 0. then values := v :: !values) s.c_bottom;
      T.iteri_flat (fun _ v -> if v > 0. then values := v :: !values) s.c_top)
    d.samples;
  match !values with
  | [] -> 1.
  | vs ->
      let a = Array.of_list vs in
      Array.sort compare a;
      let idx = min (Array.length a - 1) (95 * Array.length a / 100) in
      Float.max 1e-6 a.(idx)

(* Content identity over the exact float bits of every map plus the
   knobs/seeds that produced them — the serving tier's corpus-build
   replies and the determinism tests compare datasets by this. *)
let digest d =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf d.design;
  Buffer.add_string buf (Printf.sprintf " %d %d" d.nx d.ny);
  let add_tensor t =
    T.iteri_flat
      (fun _ v ->
        Buffer.add_string buf (Printf.sprintf " %Lx" (Int64.bits_of_float v)))
      t
  in
  Array.iter
    (fun s ->
      add_tensor s.f_bottom;
      add_tensor s.f_top;
      add_tensor s.c_bottom;
      add_tensor s.c_top;
      Buffer.add_string buf
        (Printf.sprintf " %d %s" s.sample_seed
           (Digest.to_hex (Digest.string (Marshal.to_string s.params [])))))
    d.samples;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let magic = "DCO3D-DATASET-V1"

(* Tensors are flattened to (shape, data) pairs so the Marshal image
   stays independent of the Tensor module's internals. *)
type flat_sample = {
  x_fb : int array * float array;
  x_ft : int array * float array;
  x_cb : int array * float array;
  x_ct : int array * float array;
  x_params : Params.t;
  x_seed : int;
}

let flatten_tensor t = (T.shape t, Array.init (T.numel t) (T.get_flat t))
let unflatten (shape, data) = T.make shape data

let save d path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let flat =
        Array.map
          (fun s ->
            {
              x_fb = flatten_tensor s.f_bottom;
              x_ft = flatten_tensor s.f_top;
              x_cb = flatten_tensor s.c_bottom;
              x_ct = flatten_tensor s.c_top;
              x_params = s.params;
              x_seed = s.sample_seed;
            })
          d.samples
      in
      Marshal.to_channel oc (d.design, d.nx, d.ny, flat) [])

exception Load_error of string

let load_error path cause =
  raise (Load_error (Printf.sprintf "Dataset.load: %s: %s" path cause))

let load path =
  let ic =
    try open_in_bin path with Sys_error msg -> load_error path msg
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let design, nx, ny, (flat : flat_sample array) =
        try
          let tag = really_input_string ic (String.length magic) in
          if tag <> magic then load_error path "bad file magic";
          Marshal.from_channel ic
        with
        | End_of_file -> load_error path "truncated file"
        | Failure msg -> load_error path msg
      in
      {
        design;
        nx;
        ny;
        samples =
          Array.map
            (fun f ->
              {
                f_bottom = unflatten f.x_fb;
                f_top = unflatten f.x_ft;
                c_bottom = unflatten f.x_cb;
                c_top = unflatten f.x_ct;
                params = f.x_params;
                sample_seed = f.x_seed;
              })
            flat;
      })
