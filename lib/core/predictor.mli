(** The trained congestion predictor — Algorithm 1.

    Wraps the Siamese UNet with the paper's data pipeline (Fig. 3):
    per-channel feature normalization, nearest-neighbour resize of
    features and labels to the network resolution, training against the
    Eq.-4 loss (the sum over dies of root-mean-squared Frobenius
    error), 8x orientation augmentation, and resize of the predictions
    back to GCell resolution at inference. *)

type t = {
  net : Dco3d_nn.Siamese_unet.t;
  input_hw : int;  (** network resolution (paper: 224; default: 32) *)
  label_scale : float;  (** labels are divided by this during training *)
}

type report = {
  train_loss : float array;  (** per-epoch mean Eq.-4 loss *)
  test_loss : float array;
  epochs : int;
}

val train :
  ?epochs:int ->
  ?lr:float ->
  ?input_hw:int ->
  ?base_channels:int ->
  ?augment:bool ->
  ?seed:int ->
  train:Dataset.t ->
  test:Dataset.t ->
  unit ->
  t * report
(** Algorithm 1.  Defaults: [epochs = 12], [lr = 2e-3], [input_hw = 32],
    [base_channels = 8], [augment = true].  The test set is only scored,
    never trained on. *)

val predict :
  ?numeric:[ `F32 | `I8 ] ->
  t -> Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t ->
  Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t
(** [predict t f_bottom f_top] takes raw [7; ny; nx] GCell-resolution
    feature stacks and returns the predicted congestion maps at the
    same [ny; nx] resolution, in ground-truth (overflow) units.
    [~numeric:`I8] (default [`F32]) runs the memoized int8 compilation
    of the network instead of the float path. *)

val predict_batch :
  ?numeric:[ `F32 | `I8 ] ->
  t ->
  (Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t) array ->
  (Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t) array
(** [predict_batch t pairs] runs {!predict} for a whole batch of
    [(f_bottom, f_top)] stacks in one batched forward pass (one
    im2col/GEMM call per conv layer for the entire batch).  Element [i]
    is bit-identical to [predict t (fst pairs.(i)) (snd pairs.(i))] at
    every [DCO3D_JOBS] value — the serve micro-batcher coalesces
    requests on the strength of this guarantee.  Both guarantees hold
    on the int8 path ([~numeric:`I8]) as well. *)

val fingerprint : ?numeric:[ `F32 | `I8 ] -> t -> string
(** Hex digest covering the network architecture, every weight bit, the
    network resolution and the label scale — the model component of the
    serve result-cache key.  The numeric path is part of the identity:
    [fingerprint ~numeric:`I8 t] digests the quantized bits under a
    distinct domain tag, so an int8 and a float predictor can never
    share a cache key. *)

val evaluate :
  t -> Dataset.t -> (float * float) list
(** Per-die [(nrmse, ssim)] of every sample in the dataset (two entries
    per sample: bottom then top), computed at the network resolution
    (the paper evaluates at its fixed 224x224) — the Fig. 5b metrics. *)

val eq4_loss :
  Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t ->
  Dco3d_tensor.Tensor.t -> Dco3d_tensor.Tensor.t ->
  Dco3d_autodiff.Value.t
(** Eq. 4: [1/2 * (rmse_F(c0, t0) + rmse_F(c1, t1))]. *)

exception Load_error of string
(** Raised by {!load} on a missing, truncated or corrupt file (either
    the predictor file or its companion [.net] weights file); the
    message names the offending path and the cause. *)

val save : t -> string -> unit

val load : ?expect:Dco3d_nn.Siamese_unet.config -> string -> t
(** Restore a predictor written by {!save}.  When [expect] is given,
    weight files whose stored architecture disagrees with it are
    rejected with a message naming both configurations.  Regardless of
    [expect], the loaded pair of files is cross-checked (channel count
    against the feature pipeline, resolution divisibility, weight
    shapes against the declared architecture) so that a mismatched or
    swapped file fails here instead of deep inside a convolution later.
    @raise Load_error on a missing, truncated, malformed or mismatched
    file. *)

val save_quantized : t -> string -> unit
(** Persist the standalone int8 artifact: resolution/scale header plus
    a companion [.qnet] file holding the quantized network (magic +
    digest framing). *)

val load_quantized : string -> t
(** Restore a predictor from an int8 artifact written by
    {!save_quantized}.  The returned predictor's int8 path
    ([predict ~numeric:`I8]) serves the artifact exactly; its float
    path carries the dequantized weights.  The same pipeline
    cross-checks as {!load} apply.
    @raise Load_error on a missing, truncated, corrupt or inconsistent
    file. *)
