module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module V = Dco3d_autodiff.Value
module Opt = Dco3d_autodiff.Optimizer
module SiaUNet = Dco3d_nn.Siamese_unet
module Fm = Dco3d_congestion.Feature_maps
module Metrics = Dco3d_congestion.Metrics
module Obs = Dco3d_obs.Obs

let log_src = Logs.Src.create "dco3d.predictor" ~doc:"Algorithm 1 training"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = { net : SiaUNet.t; input_hw : int; label_scale : float }

type report = { train_loss : float array; test_loss : float array; epochs : int }

let eq4_loss c0 c1 t0 t1 =
  V.scale 0.5 (V.add (V.rmse_frobenius c0 t0) (V.rmse_frobenius c1 t1))

(* Preprocess one sample into network-resolution tensors. *)
let prep ~input_hw ~label_scale (s : Dataset.sample) =
  let fmap stack =
    Fm.resize_stack (Fm.normalize stack) input_hw input_hw
  in
  let lmap m =
    T.reshape
      (T.scale (1. /. label_scale) (T.resize_nearest m input_hw input_hw))
      [| 1; input_hw; input_hw |]
  in
  (fmap s.Dataset.f_bottom, fmap s.Dataset.f_top,
   lmap s.Dataset.c_bottom, lmap s.Dataset.c_top)

let dataset_loss net ~input_hw ~label_scale (d : Dataset.t) =
  if Array.length d.Dataset.samples = 0 then 0.
  else begin
    let acc = ref 0. in
    Array.iter
      (fun s ->
        let f0, f1, t0, t1 = prep ~input_hw ~label_scale s in
        let c0, c1 = SiaUNet.forward net (V.const f0) (V.const f1) in
        acc := !acc +. T.get_flat (V.data (eq4_loss c0 c1 t0 t1)) 0)
      d.Dataset.samples;
    !acc /. float_of_int (Array.length d.Dataset.samples)
  end

let train ?(epochs = 12) ?(lr = 2e-3) ?(input_hw = 32) ?(base_channels = 8)
    ?(augment = true) ?(seed = 3) ~train ~test () =
  Obs.with_span "predictor" @@ fun () ->
  let rng = Rng.create (seed lxor 0x9a7) in
  let net =
    SiaUNet.create rng
      { SiaUNet.in_channels = Fm.n_channels; base_channels; depth = 2 }
  in
  let label_scale = Dataset.label_scale train in
  let opt = Opt.adam ~lr (SiaUNet.params net) in
  (* pre-expand the augmented training set (the paper's 8x) *)
  let train_samples =
    if augment then
      Array.of_list
        (List.concat_map Dataset.augment8 (Array.to_list train.Dataset.samples))
    else train.Dataset.samples
  in
  let prepped =
    Array.map (prep ~input_hw ~label_scale) train_samples
  in
  let train_loss = Array.make epochs 0. in
  let test_loss = Array.make epochs 0. in
  let order = Array.init (Array.length prepped) Fun.id in
  for epoch = 0 to epochs - 1 do
    Obs.with_span (Printf.sprintf "epoch:%d" epoch) @@ fun () ->
    (* step decay keeps late epochs from bouncing around the optimum *)
    if epoch = (2 * epochs) / 3 then Opt.set_lr opt (lr *. 0.3);
    Rng.shuffle rng order;
    let acc = ref 0. in
    Array.iter
      (fun k ->
        let f0, f1, t0, t1 = prepped.(k) in
        let c0, c1 = SiaUNet.forward net (V.const f0) (V.const f1) in
        let loss = eq4_loss c0 c1 t0 t1 in
        acc := !acc +. T.get_flat (V.data loss) 0;
        V.backward loss;
        Opt.step opt)
      order;
    train_loss.(epoch) <-
      !acc /. float_of_int (max 1 (Array.length prepped));
    test_loss.(epoch) <- dataset_loss net ~input_hw ~label_scale test;
    Log.info (fun m ->
        m "epoch %d/%d: train %.4f test %.4f" (epoch + 1) epochs
          train_loss.(epoch) test_loss.(epoch))
  done;
  ({ net; input_hw; label_scale }, { train_loss; test_loss; epochs })

let predict_batch ?(numeric = `F32) t pairs =
  if Array.length pairs = 0 then [||]
  else begin
    let fmap stack =
      Fm.resize_stack (Fm.normalize stack) t.input_hw t.input_hw
    in
    let prepped = Array.map (fun (f0, f1) -> (fmap f0, fmap f1)) pairs in
    let outs = SiaUNet.predict_batch ~numeric t.net prepped in
    Array.map2
      (fun (f_bottom, _) (c0, c1) ->
        let nx = T.dim f_bottom 2 and ny = T.dim f_bottom 1 in
        let post m = T.relu (T.scale t.label_scale (T.resize_nearest m ny nx)) in
        (post c0, post c1))
      pairs outs
  end

let predict ?(numeric = `F32) t f_bottom f_top =
  match numeric with
  | `I8 -> (predict_batch ~numeric t [| (f_bottom, f_top) |]).(0)
  | `F32 ->
      let nx = T.dim f_bottom 2 and ny = T.dim f_bottom 1 in
      let fmap stack =
        Fm.resize_stack (Fm.normalize stack) t.input_hw t.input_hw
      in
      let c0, c1 = SiaUNet.predict t.net (fmap f_bottom) (fmap f_top) in
      let post m =
        (* back to GCell resolution and ground-truth units; overflow maps
           are non-negative by definition *)
        T.relu (T.scale t.label_scale (T.resize_nearest m ny nx))
      in
      (post c0, post c1)

let fingerprint ?(numeric = `F32) t =
  (* the numeric path is part of the model identity: an int8 and a
     float predictor must never share a serve-cache key *)
  let net_fp =
    match numeric with
    | `F32 -> ("f32", SiaUNet.fingerprint t.net)
    | `I8 -> ("i8", SiaUNet.qnet_fingerprint (SiaUNet.quantized t.net))
  in
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (t.input_hw, t.label_scale, net_fp) []))

let evaluate t (d : Dataset.t) =
  (* metrics at the network resolution H x W, as the paper evaluates at
     its fixed 224x224 — comparing an upsampled low-resolution
     prediction against full-resolution labels would punish detail the
     model never saw *)
  let at_hw m = T.resize_nearest m t.input_hw t.input_hw in
  Array.to_list d.Dataset.samples
  |> List.concat_map (fun (s : Dataset.sample) ->
         let p0, p1 = predict t s.Dataset.f_bottom s.Dataset.f_top in
         let score p truth =
           let p = at_hw p and truth = at_hw truth in
           (Metrics.nrmse p truth, Metrics.ssim p truth)
         in
         [ score p0 s.Dataset.c_bottom; score p1 s.Dataset.c_top ])

let magic = "DCO3D-PREDICTOR-V1"

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      Marshal.to_channel oc (t.input_hw, t.label_scale) []);
  SiaUNet.save t.net (path ^ ".net")

exception Load_error of string

let load_error path cause =
  raise (Load_error (Printf.sprintf "Predictor.load: %s: %s" path cause))

let load ?expect path =
  let ic =
    try open_in_bin path with Sys_error msg -> load_error path msg
  in
  let input_hw, label_scale =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          let tag = really_input_string ic (String.length magic) in
          if tag <> magic then load_error path "bad file magic";
          (Marshal.from_channel ic : int * float)
        with
        | End_of_file -> load_error path "truncated file"
        | Failure msg -> load_error path msg)
  in
  if input_hw < 1 then
    load_error path (Printf.sprintf "invalid network resolution %d" input_hw);
  if not (Float.is_finite label_scale) || label_scale <= 0. then
    load_error path (Printf.sprintf "invalid label scale %g" label_scale);
  let net =
    (* the companion weights file is part of the same on-disk artifact,
       so its failures surface as this module's Load_error too *)
    try SiaUNet.load ?expect (path ^ ".net")
    with SiaUNet.Load_error msg -> raise (Load_error msg)
  in
  (* Cross-check the pair of files: a swapped-in weights file that
     Marshal-decodes fine must still agree with the data pipeline and
     the stored network resolution, or [predict] would blow up inside
     a conv long after loading "succeeded". *)
  let cfg = SiaUNet.config net in
  if cfg.SiaUNet.in_channels <> Fm.n_channels then
    load_error path
      (Printf.sprintf
         "weights expect %d input channels but the feature pipeline produces %d"
         cfg.SiaUNet.in_channels Fm.n_channels);
  let granularity = 1 lsl cfg.SiaUNet.depth in
  if input_hw mod granularity <> 0 then
    load_error path
      (Printf.sprintf
         "network resolution %d is not divisible by 2^depth = %d" input_hw
         granularity);
  { net; input_hw; label_scale }

(* Standalone int8 artifact: the resolution/scale header plus a
   companion .qnet file holding the quantized network. *)
let qmagic = "DCO3D-QPRED-V1"

let save_quantized t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc qmagic;
      Marshal.to_channel oc (t.input_hw, t.label_scale) []);
  SiaUNet.save_quantized (SiaUNet.quantized t.net) (path ^ ".qnet")

let load_quantized path =
  let ic = try open_in_bin path with Sys_error msg -> load_error path msg in
  let input_hw, label_scale =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          let tag = really_input_string ic (String.length qmagic) in
          if tag <> qmagic then load_error path "bad file magic";
          (Marshal.from_channel ic : int * float)
        with
        | End_of_file -> load_error path "truncated file"
        | Failure msg -> load_error path msg)
  in
  if input_hw < 1 then
    load_error path (Printf.sprintf "invalid network resolution %d" input_hw);
  if not (Float.is_finite label_scale) || label_scale <= 0. then
    load_error path (Printf.sprintf "invalid label scale %g" label_scale);
  let net =
    try SiaUNet.load_quantized (path ^ ".qnet")
    with SiaUNet.Load_error msg -> raise (Load_error msg)
  in
  let cfg = SiaUNet.config net in
  if cfg.SiaUNet.in_channels <> Fm.n_channels then
    load_error path
      (Printf.sprintf
         "weights expect %d input channels but the feature pipeline produces %d"
         cfg.SiaUNet.in_channels Fm.n_channels);
  let granularity = 1 lsl cfg.SiaUNet.depth in
  if input_hw mod granularity <> 0 then
    load_error path
      (Printf.sprintf
         "network resolution %d is not divisible by 2^depth = %d" input_hw
         granularity);
  { net; input_hw; label_scale }
