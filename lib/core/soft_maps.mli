(** Differentiable ("soft") feature-map generation — section IV-A and
    the custom backward function of section IV-B.

    During optimization the GNN emits continuous positions [x, y] and a
    tier probability [z in [0,1]] per cell.  The 8 per-die feature maps
    are rebuilt from these {e soft} quantities:

    + per-net 2D contributions are weighted by [prod_p z_p] (top die)
      or [prod_p (1 - z_p)] (bottom die), and 3D contributions by
      [1 - prod z - prod (1-z)], exactly as in Fig. 4(b);
    + cell/pin densities splat bilinearly (a differentiable tent
      kernel) with the same per-die tier weights;
    + macro blockage stays constant (DCO does not move macros).

    The whole computation is exposed to the tape as one custom node
    (the OCaml analogue of the paper's custom PyTorch backward): the
    forward pass is plain tensor code; the hand-written backward
    implements Eq. 6 for the RUDY terms — only the cells holding a
    net's extreme pins receive x/y gradients, via the bounding-box
    sub-gradient — plus the product-rule gradients for [z] and the tent
    gradients for the density channels. *)

val build :
  ?thermal:Dco3d_tensor.Tensor.t ->
  placement:Dco3d_place.Placement.t ->
  x:Dco3d_autodiff.Value.t ->
  y:Dco3d_autodiff.Value.t ->
  z:Dco3d_autodiff.Value.t ->
  nx:int ->
  ny:int ->
  unit ->
  Dco3d_autodiff.Value.t * Dco3d_autodiff.Value.t
(** [build ~placement ~x ~y ~z ~nx ~ny ()] returns the soft per-die
    feature stacks [(f_bottom, f_top)], each [[8; ny; nx]] in the raw
    units of {!Dco3d_congestion.Feature_maps}.  [x], [y], [z] are
    rank-1 values of length [n_cells]; IO pads are fixed on the bottom
    die; the [placement] supplies everything that does not move.
    [thermal] is a [[2; ny; nx]] temperature-rise map entering as a
    {e frozen} channel (zeros when omitted): the UNet sees it, but no
    gradient flows through it — thermal position gradients come from
    the dedicated [Losses.thermal] penalty instead. *)

val hard_assignment : Dco3d_tensor.Tensor.t -> int array
(** [hard_assignment z] is the final tier per cell: top when
    [z >= 0.5] (the paper's hard assignment). *)
