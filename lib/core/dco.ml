module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng
module V = Dco3d_autodiff.Value
module Opt = Dco3d_autodiff.Optimizer
module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement
module Fp = Dco3d_place.Floorplan
module Placer = Dco3d_place.Placer
module Csr = Dco3d_graph.Csr
module SiaUNet = Dco3d_nn.Siamese_unet
module Fm = Dco3d_congestion.Feature_maps
module Thermal = Dco3d_thermal.Thermal
module Obs = Dco3d_obs.Obs

let log_src = Logs.Src.create "dco3d.dco" ~doc:"Algorithm 2 optimization"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  iterations : int;
  lr : float;
  hidden : int;
  max_move_gcells : float;
  alpha : float;
  beta : float;
  gamma : float;
  delta : float;
  density_target : float;
  seed : int;
  freeze_z : bool;
  (** ablation: disable cross-tier (z) movement, reducing DCO-3D to a
      2D spreader — isolates the paper's contribution #2 *)
  epsilon : float;
  (** weight of the thermal penalty (0 = thermally blind, the paper's
      baseline).  When positive, each iteration re-solves the
      steady-state field from the current soft positions and adds
      [epsilon * Losses.thermal] so hot cells repel across tiers. *)
}

let default_config =
  {
    iterations = 60;
    lr = 6e-3;
    hidden = 32;
    max_move_gcells = 1.5;
    alpha = 1.0;
    beta = 30.;
    gamma = 1.5;
    delta = 8.;
    density_target = 0.85;
    seed = 11;
    freeze_z = false;
    epsilon = 0.;
  }

type iter_stats = {
  total : float;
  disp : float;
  ovlp : float;
  cut : float;
  cong : float;
}

type report = {
  stats : iter_stats array;
  predicted_cong_start : float;
  predicted_cong_end : float;
  cut_start : int;
  cut_end : int;
  mean_displacement : float;
  tier_moves : int;
}

let resize_value v h w =
  let d = V.data v in
  if T.rank d <> 3 then invalid_arg "Dco.resize_value: rank-3 expected";
  let c = T.dim d 0 and hi = T.dim d 1 and wi = T.dim d 2 in
  let out =
    T.concat_channels
      (List.init c (fun ch -> T.resize_nearest (T.channel d ch) h w))
  in
  V.custom ~data:out ~parents:[ v ]
    ~backward:(fun g ->
      let gin = T.zeros [| c; hi; wi |] in
      for ch = 0 to c - 1 do
        for oy = 0 to h - 1 do
          let iy = min (hi - 1) (oy * hi / h) in
          for ox = 0 to w - 1 do
            let ix = min (wi - 1) (ox * wi / w) in
            T.set3 gin ch iy ix (T.get3 gin ch iy ix +. T.get3 g ch oy ox)
          done
        done
      done;
      [ Some gin ])

let normalize_features v =
  let d = V.data v in
  let c = T.dim d 0 and h = T.dim d 1 and w = T.dim d 2 in
  if c <> Fm.n_channels then
    invalid_arg "Dco.normalize_features: expected 8 channels";
  let scales =
    T.init [| c; h; w |] (fun idx -> 1. /. Fm.default_scales.(idx.(0)))
  in
  V.mul (V.const scales) v

(* Bin per-cell power at *soft* positions: movable cells split between
   the dies by their tier probability [zs], macros stay on their fixed
   tier.  Shared by the full Algorithm-2 loop and by {!cool}. *)
let soft_power_grid (p : Pl.t) ~cell_mw ~xs ~ys ~zs ~nx ~ny =
  let nl = p.Pl.nl in
  let die_w = p.Pl.fp.Fp.width and die_h = p.Pl.fp.Fp.height in
  let power_grid = T.zeros [| 2; ny; nx |] in
  let add tier gy gx v =
    T.set3 power_grid tier gy gx (T.get3 power_grid tier gy gx +. v)
  in
  let n = Nl.n_cells nl in
  for c = 0 to n - 1 do
    let px = Float.max 0. (Float.min (die_w -. 1e-9) (T.get_flat xs c)) in
    let py = Float.max 0. (Float.min (die_h -. 1e-9) (T.get_flat ys c)) in
    let gx = min (nx - 1) (int_of_float (px /. die_w *. float_of_int nx)) in
    let gy = min (ny - 1) (int_of_float (py /. die_h *. float_of_int ny)) in
    if Nl.is_macro nl c then add p.Pl.tier.(c) gy gx cell_mw.(c)
    else begin
      let zc = T.get_flat zs c in
      add 0 gy gx (cell_mw.(c) *. (1. -. zc));
      add 1 gy gx (cell_mw.(c) *. zc)
    end
  done;
  power_grid

let c_iters = Obs.counter "dco/iterations"
let h_total = Obs.histogram "dco/loss_total"
let h_disp = Obs.histogram "dco/loss_disp"
let h_ovlp = Obs.histogram "dco/loss_ovlp"
let h_cut = Obs.histogram "dco/loss_cut"
let h_cong = Obs.histogram "dco/loss_cong"

let optimize ?(config = default_config) ~predictor (p_in : Pl.t) =
  Obs.with_span "dco" @@ fun () ->
  let p = Pl.copy p_in in
  let nl = p.Pl.nl in
  let fp = p.Pl.fp in
  let nx = fp.Fp.gcell_nx and ny = fp.Fp.gcell_ny in
  let rng = Rng.create (config.seed lxor 0xdc0) in
  (* graph and features *)
  let raw_adj = Spreader.graph_of_netlist nl in
  let norm_adj = Csr.symmetric_normalize raw_adj in
  let features = Spreader.node_features p in
  let max_move = config.max_move_gcells *. Fp.gcell_w fp in
  let spreader =
    Spreader.create rng ~adj:norm_adj ~n_features:(T.dim features 1)
      ~hidden:config.hidden ~max_move ~placement:p ()
  in
  let opt = Opt.adam ~lr:config.lr (Spreader.params spreader) in
  let x0 = T.of_array1 p.Pl.x and y0 = T.of_array1 p.Pl.y in
  let input_hw = predictor.Predictor.input_hw in
  let net = predictor.Predictor.net in
  let z_const =
    lazy
      (V.const
         (T.init [| Nl.n_cells nl |] (fun i -> float_of_int p.Pl.tier.(i.(0)))))
  in
  (* Thermal coupling: per-cell power attribution is frozen at the
     incoming placement (power barely depends on the spreading-scale
     moves), the field is re-solved from the current soft positions
     every iteration and enters both as the UNet's thermal channel and
     as the frozen-field penalty. *)
  let cell_mw =
    lazy (Thermal.cell_power p ~power:(Thermal.placement_power p))
  in
  let solve_soft_thermal ~x ~y ~z =
    let mw = Lazy.force cell_mw in
    let power_grid =
      soft_power_grid p ~cell_mw:mw ~xs:(V.data x) ~ys:(V.data y)
        ~zs:(V.data z) ~nx ~ny
    in
    let r = Thermal.solve ~power_grid () in
    let ambient = Thermal.default_config.Thermal.ambient_c in
    T.map (fun t -> Float.max 0. (t -. ambient)) r.Thermal.grid
  in
  let forward_losses () =
    let x, y, z = Spreader.forward spreader ~features in
    let z = if config.freeze_z then Lazy.force z_const else z in
    let rise =
      if config.epsilon > 0. then Some (solve_soft_thermal ~x ~y ~z)
      else None
    in
    let f0, f1 = Soft_maps.build ?thermal:rise ~placement:p ~x ~y ~z ~nx ~ny () in
    let prep f = resize_value (normalize_features f) input_hw input_hw in
    let c0, c1 = SiaUNet.forward net (prep f0) (prep f1) in
    let l_cong = Losses.congestion c0 c1 in
    let l_cut = Losses.cutsize ~adj:raw_adj z in
    let l_ovlp = Losses.overlap ~target:config.density_target f0 f1 in
    let l_disp = Losses.displacement ~x ~y ~x0 ~y0 in
    let l_therm =
      match rise with
      | Some grid ->
          Losses.thermal ~grid ~cell_mw:(Lazy.force cell_mw) ~placement:p
            ~nx ~ny ~x ~y ~z
      | None -> V.scalar 0.
    in
    let total =
      V.add_list
        [
          V.scale config.alpha l_disp;
          V.scale config.beta l_ovlp;
          V.scale config.gamma l_cut;
          V.scale config.delta l_cong;
          V.scale config.epsilon l_therm;
        ]
    in
    (x, y, z, total, l_disp, l_ovlp, l_cut, l_cong)
  in
  let stats = Array.make config.iterations
      { total = 0.; disp = 0.; ovlp = 0.; cut = 0.; cong = 0. }
  in
  let sc v = T.get_flat (V.data v) 0 in
  let cong_start = ref 0. and cong_end = ref 0. in
  (* Trust region: the congestion term comes from a learned proxy, and
     chasing it far below its starting value only means the GNN has
     drifted outside the predictor's training distribution.  Stop once
     the predicted congestion has dropped by 25 %. *)
  let trust_floor = ref infinity in
  let it = ref 0 in
  let stop = ref false in
  while (not !stop) && !it < config.iterations do
    Obs.with_span (Printf.sprintf "iter:%d" !it) @@ fun () ->
    let _, _, _, total, l_disp, l_ovlp, l_cut, l_cong = forward_losses () in
    if !it = 0 then begin
      cong_start := sc l_cong;
      trust_floor := 0.75 *. sc l_cong
    end;
    cong_end := sc l_cong;
    stats.(!it) <-
      { total = sc total; disp = sc l_disp; ovlp = sc l_ovlp;
        cut = sc l_cut; cong = sc l_cong };
    Obs.incr c_iters;
    if Obs.enabled () then begin
      Obs.observe h_total stats.(!it).total;
      Obs.observe h_disp stats.(!it).disp;
      Obs.observe h_ovlp stats.(!it).ovlp;
      Obs.observe h_cut stats.(!it).cut;
      Obs.observe h_cong stats.(!it).cong
    end;
    if sc l_cong < !trust_floor then stop := true
    else begin
      V.backward total;
      Opt.step opt
    end;
    if (!it + 1) mod 10 = 0 then
      Log.info (fun m ->
          m "iter %d/%d: total %.4f (disp %.4f ovlp %.5f cut %.4f cong %.4f)"
            (!it + 1) config.iterations stats.(!it).total stats.(!it).disp
            stats.(!it).ovlp stats.(!it).cut stats.(!it).cong);
    incr it
  done;
  let stats = Array.sub stats 0 (max 1 !it) in
  (* final hard placement *)
  let x, y, z, _, _, _, _, l_cong = forward_losses () in
  cong_end := sc l_cong;
  let cut_start = Pl.cut_size p_in in
  let tiers =
    if config.freeze_z then Array.copy p_in.Pl.tier
    else Soft_maps.hard_assignment (V.data z)
  in
  let n = Nl.n_cells nl in
  let tier_moves = ref 0 in
  for c = 0 to n - 1 do
    if not (Nl.is_macro nl c) then begin
      p.Pl.x.(c) <- T.get_flat (V.data x) c;
      p.Pl.y.(c) <- T.get_flat (V.data y) c;
      if tiers.(c) <> p.Pl.tier.(c) then incr tier_moves;
      p.Pl.tier.(c) <- tiers.(c)
    end
  done;
  Pl.clamp_to_die p;
  Placer.legalize p;
  (* Fall-back guard: when the optimizer failed to reduce even its own
     predicted congestion, the move set is noise — keep the incoming
     placement (the TCL export is then empty, a no-op for the flow). *)
  (* (Skipped for thermal runs: there the optimizer trades predicted
     congestion against temperature, so a flat congestion trace does
     not mean the move set is noise.) *)
  let p =
    if config.epsilon = 0. && !cong_end >= 0.995 *. !cong_start then begin
      Log.info (fun m ->
          m "DCO made no predicted progress (%.4f -> %.4f): keeping input"
            !cong_start !cong_end);
      Pl.copy p_in
    end
    else p
  in
  let report =
    {
      stats;
      predicted_cong_start = !cong_start;
      predicted_cong_end = !cong_end;
      cut_start;
      cut_end = Pl.cut_size p;
      mean_displacement = Pl.displacement_from p p_in;
      tier_moves = !tier_moves;
    }
  in
  Log.info (fun m ->
      m "DCO done: pred cong %.4f -> %.4f, cut %d -> %d, %d tier moves, mean disp %.3f um"
        report.predicted_cong_start report.predicted_cong_end report.cut_start
        report.cut_end report.tier_moves report.mean_displacement);
  (p, report)

(* ------------------------------------------------------------------ *)
(* Thermal spreading: alternating minimization on the penalty alone   *)
(* ------------------------------------------------------------------ *)

type cool_report = { loss_start : float; loss_end : float; solves : int }

let cool ?(iterations = 80) ?(step_gcells = 0.5) ?(step_z = 0.1)
    (p_in : Pl.t) =
  Obs.with_span "dco_cool" @@ fun () ->
  let p = Pl.copy p_in in
  let nl = p.Pl.nl in
  let fp = p.Pl.fp in
  let nx = fp.Fp.gcell_nx and ny = fp.Fp.gcell_ny in
  let n = Nl.n_cells nl in
  (* power attribution frozen at the incoming placement, exactly as in
     the full Algorithm-2 loop *)
  let cell_mw = Thermal.cell_power p ~power:(Thermal.placement_power p) in
  let xs = T.of_array1 p.Pl.x in
  let ys = T.of_array1 p.Pl.y in
  let zs = T.init [| n |] (fun i -> float_of_int p.Pl.tier.(i.(0))) in
  let step_um = step_gcells *. Fp.gcell_w fp in
  let ambient = Thermal.default_config.Thermal.ambient_c in
  let die_w = fp.Fp.width and die_h = fp.Fp.height in
  let loss_start = ref nan and loss_end = ref nan in
  for it = 0 to iterations - 1 do
    (* (a) re-solve the frozen field from the current soft positions *)
    let power_grid = soft_power_grid p ~cell_mw ~xs ~ys ~zs ~nx ~ny in
    let r = Thermal.solve ~power_grid () in
    let rise = T.map (fun t -> Float.max 0. (t -. ambient)) r.Thermal.grid in
    (* (b) one descent step on the penalty with the field held fixed *)
    let x = V.param xs and y = V.param ys and z = V.param zs in
    let l = Losses.thermal ~grid:rise ~cell_mw ~placement:p ~nx ~ny ~x ~y ~z in
    let lv = T.get_flat (V.data l) 0 in
    if it = 0 then loss_start := lv;
    loss_end := lv;
    V.backward l;
    let gx = V.grad x and gy = V.grad y and gz = V.grad z in
    (* normalize by the largest gradient component so the most-pushed
       cell moves exactly [step_gcells] per iteration (and at most
       [step_z] in z) — scale-free in design size and absolute power *)
    let gmax = ref 0. and gzmax = ref 0. in
    for c = 0 to n - 1 do
      gmax :=
        Float.max !gmax
          (Float.max (Float.abs (T.get_flat gx c))
             (Float.abs (T.get_flat gy c)));
      gzmax := Float.max !gzmax (Float.abs (T.get_flat gz c))
    done;
    if !gmax > 0. then begin
      let s = step_um /. !gmax in
      for c = 0 to n - 1 do
        if not (Nl.is_macro nl c) then begin
          T.set_flat xs c
            (Float.max 0.
               (Float.min die_w (T.get_flat xs c -. (s *. T.get_flat gx c))));
          T.set_flat ys c
            (Float.max 0.
               (Float.min die_h (T.get_flat ys c -. (s *. T.get_flat gy c))))
        end
      done
    end;
    if !gzmax > 0. then begin
      let s = step_z /. !gzmax in
      for c = 0 to n - 1 do
        if not (Nl.is_macro nl c) then
          T.set_flat zs c
            (Float.max 0.
               (Float.min 1. (T.get_flat zs c -. (s *. T.get_flat gz c))))
      done
    end
  done;
  let tiers = Soft_maps.hard_assignment zs in
  for c = 0 to n - 1 do
    if not (Nl.is_macro nl c) then begin
      p.Pl.x.(c) <- T.get_flat xs c;
      p.Pl.y.(c) <- T.get_flat ys c;
      p.Pl.tier.(c) <- tiers.(c)
    end
  done;
  Pl.clamp_to_die p;
  Placer.legalize p;
  (p, { loss_start = !loss_start; loss_end = !loss_end; solves = iterations })
