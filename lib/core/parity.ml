module T = Dco3d_tensor.Tensor
module Rng = Dco3d_tensor.Rng

(* Golden-parity metrics between a float32 reference prediction and its
   int8 counterpart.  Two views of the same question ("is the quantized
   model still the model?"):

   - [normalized_divergence]: worst absolute output error, normalized
     by the largest reference magnitude — the per-pixel bound.
   - [rank_agreement]: over sampled pixel pairs, how often the int8 map
     agrees with the reference about which pixel is more congested.
     The downstream consumer (Algorithm 2's spreading, hotspot
     triage) acts on orderings, not absolute values, so preserved
     ranks matter more than preserved digits.

   The pair sample is drawn from a fixed-seed stream, so the report is
   reproducible run to run. *)

type report = {
  samples : int;
  maps : int;
  max_abs : float;
  ref_magnitude : float;
  normalized_divergence : float;
  rank_agreement : float;
  rank_pairs : int;
}

let pairs_per_map = 4096

let compare ~f32 ~i8 =
  if Array.length f32 <> Array.length i8 then
    invalid_arg "Parity.compare: sample counts differ";
  let maps = ref [] in
  Array.iteri
    (fun k (r0, r1) ->
      let q0, q1 = i8.(k) in
      if T.shape r0 <> T.shape q0 || T.shape r1 <> T.shape q1 then
        invalid_arg "Parity.compare: output shapes differ";
      maps := (r0, q0) :: (r1, q1) :: !maps)
    f32;
  let maps = List.rev !maps in
  let ref_magnitude =
    List.fold_left
      (fun acc (r, _) ->
        let m = ref acc in
        for i = 0 to T.numel r - 1 do
          m := Float.max !m (Float.abs (T.get_flat r i))
        done;
        !m)
      0. maps
  in
  let max_abs =
    List.fold_left
      (fun acc (r, q) ->
        let m = ref acc in
        for i = 0 to T.numel r - 1 do
          m := Float.max !m (Float.abs (T.get_flat r i -. T.get_flat q i))
        done;
        !m)
      0. maps
  in
  let denom = if ref_magnitude < 1e-12 then 1.0 else ref_magnitude in
  (* who-wins agreement over a deterministic pair sample; pairs the
     reference itself calls a tie carry no ranking information *)
  let tie_eps = 1e-6 *. denom in
  let rng = Rng.create 0xC0DE in
  let counted = ref 0 and agreed = ref 0 in
  List.iter
    (fun (r, q) ->
      let n = T.numel r in
      if n > 1 then
        for _ = 1 to pairs_per_map do
          let i = Rng.int rng n in
          let j = Rng.int rng n in
          if i <> j then begin
            let df = T.get_flat r i -. T.get_flat r j in
            if Float.abs df > tie_eps then begin
              incr counted;
              let dq = T.get_flat q i -. T.get_flat q j in
              if df *. dq > 0. then incr agreed
            end
          end
        done)
    maps;
  {
    samples = Array.length f32;
    maps = List.length maps;
    max_abs;
    ref_magnitude;
    normalized_divergence = max_abs /. denom;
    rank_agreement =
      (if !counted = 0 then 1.0
       else float_of_int !agreed /. float_of_int !counted);
    rank_pairs = !counted;
  }

let default_max_divergence = 5e-2
let default_min_rank_agreement = 0.95

let check ?(max_divergence = default_max_divergence)
    ?(min_rank_agreement = default_min_rank_agreement) r =
  if r.normalized_divergence > max_divergence then
    Error
      (Printf.sprintf
         "normalized divergence %.4f exceeds the %.4f bound (max abs %.6f \
          over reference magnitude %.6f)"
         r.normalized_divergence max_divergence r.max_abs r.ref_magnitude)
  else if r.rank_agreement < min_rank_agreement then
    Error
      (Printf.sprintf
         "rank agreement %.4f below the %.4f floor (%d pairs)"
         r.rank_agreement min_rank_agreement r.rank_pairs)
  else Ok ()

let to_json r =
  Printf.sprintf
    "{\"samples\": %d, \"maps\": %d, \"max_abs\": %.6g, \"ref_magnitude\": \
     %.6g, \"normalized_divergence\": %.6g, \"rank_agreement\": %.6g, \
     \"rank_pairs\": %d}"
    r.samples r.maps r.max_abs r.ref_magnitude r.normalized_divergence
    r.rank_agreement r.rank_pairs

let pp out r =
  Printf.fprintf out
    "parity: normalized divergence %.4f (max abs %.6f / ref magnitude %.4f), \
     rank agreement %.4f over %d pairs, %d samples"
    r.normalized_divergence r.max_abs r.ref_magnitude r.rank_agreement
    r.rank_pairs r.samples
