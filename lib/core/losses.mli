(** The differentiable objectives of Algorithm 2 (sections IV-B..IV-E)
    plus the TaiWei-style thermal penalty. *)

val congestion :
  Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t
(** Section IV-B: the congestion penalty of the two predicted maps,
    "calculated using Eq. 4" — the mean over dies of the
    root-mean-squared Frobenius norm of the predicted congestion
    (target zero). *)

val cutsize :
  adj:Dco3d_graph.Csr.t -> Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t
(** Eq. 7 with soft tier probabilities: [cut(T,B)/deg(T) +
    cut(T,B)/deg(B)] where, over the weighted cell-connectivity graph
    [adj], [cut = sum_ij a_ij (z_i(1-z_j) + z_j(1-z_i)) / 2],
    [deg(T) = sum_ij a_ij z_i z_j], [deg(B)] symmetric.  [z] is the
    rank-1 tier-probability vector. *)

val overlap :
  ?target:float ->
  Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t
(** Sections IV-D (Eq. 8-10): the smoothed density penalty.  We penalize
    the soft per-die cell-density channels above [target] (default
    0.85): [mean (relu (density - target))^2] summed over dies.  The
    bilinear tent kernel of the soft maps plays the role of the
    bell-shaped potential [p_x p_y] — both are separable, piecewise
    polynomial bumps with compact support. *)

val displacement :
  x:Dco3d_autodiff.Value.t ->
  y:Dco3d_autodiff.Value.t ->
  x0:Dco3d_tensor.Tensor.t ->
  y0:Dco3d_tensor.Tensor.t ->
  Dco3d_autodiff.Value.t
(** Eq. 11, normalized per cell: [mean ((x - x0)^2 + (y - y0)^2)]
    in um^2. *)

val thermal :
  grid:Dco3d_tensor.Tensor.t ->
  cell_mw:float array ->
  placement:Dco3d_place.Placement.t ->
  nx:int ->
  ny:int ->
  x:Dco3d_autodiff.Value.t ->
  y:Dco3d_autodiff.Value.t ->
  z:Dco3d_autodiff.Value.t ->
  Dco3d_autodiff.Value.t
(** Thermal penalty over a {e frozen} temperature-rise field [grid]
    ([[2; ny; nx]], from {!Dco3d_thermal.Thermal}):
    [sum_c (p_c/P) ((1-z_c) T_bot(x_c,y_c)^2 + z_c T_top(x_c,y_c)^2) / 2]
    with bilinear interpolation, where [P] is the total movable-cell
    power — i.e. the power-weighted mean of the squared rise, O(K^2)
    regardless of design size.  The rise is squared so the force on a
    cell scales with how hot its bin already is — the hottest bins
    shed power first, which is what moves the {e peak} temperature (a
    linear term pulls as hard on mildly-warm cells and mostly reshuffles
    the average).  Macros (immovable) contribute neither value nor
    gradient.  The gradient moves hot, high-power cells down the
    lateral temperature gradient and flips them toward the cooler
    tier; the caller re-solves the field from the updated positions
    each iteration (alternating minimization) instead of
    differentiating through the CG solve. *)
