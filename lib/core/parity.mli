(** Golden-parity metrics for the quantized inference path.

    Compares int8 predictions against their float32 golden reference
    with the two measures the acceptance gate uses: the worst absolute
    output error normalized by the reference's magnitude, and
    "who-wins" rank agreement — over sampled pixel pairs, how often
    the int8 map agrees with the reference about which pixel is more
    congested.  The congestion consumers (Algorithm 2's spreading,
    hotspot triage) act on orderings, so preserved ranks are the
    fidelity that matters.

    The pair sample is drawn from a fixed-seed stream: the report is a
    pure function of the two prediction sets. *)

type report = {
  samples : int;  (** prediction pairs compared *)
  maps : int;  (** individual congestion maps (2 per sample) *)
  max_abs : float;  (** worst absolute elementwise divergence *)
  ref_magnitude : float;  (** largest absolute reference value *)
  normalized_divergence : float;  (** [max_abs / max ref_magnitude 1e-12] *)
  rank_agreement : float;  (** agreed / counted pairs; [1.0] if none *)
  rank_pairs : int;  (** pairs counted (reference ties are skipped) *)
}

val compare :
  f32:(Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t) array ->
  i8:(Dco3d_tensor.Tensor.t * Dco3d_tensor.Tensor.t) array ->
  report
(** Element [k] of both arrays must be the two dies' predictions for
    the same input.
    @raise Invalid_argument on length or shape disagreement. *)

val default_max_divergence : float
(** [5e-2] — the acceptance bound on {!report.normalized_divergence}. *)

val default_min_rank_agreement : float
(** [0.95] — the acceptance floor on {!report.rank_agreement}. *)

val check :
  ?max_divergence:float -> ?min_rank_agreement:float -> report ->
  (unit, string) result
(** Gate a report against the bounds (defaults above); the error
    message names the violated bound and the measured value. *)

val to_json : report -> string
(** One-line JSON object (the parity-report artifact format). *)

val pp : out_channel -> report -> unit
(** Human-readable one-liner. *)
