(** Differentiable Congestion Optimization — Algorithm 2 and Fig. 4.

    Starting from a 3D global placement, a GNN ({!Spreader}) predicts
    updated soft cell locations; these are rendered into differentiable
    feature maps ({!Soft_maps}), pushed through the {e frozen} trained
    congestion predictor, and the weighted sum of the congestion,
    overlap, cutsize and displacement losses ({!Losses}) is
    backpropagated through the whole chain (Eq. 5) to update the GNN by
    gradient descent.  After convergence the soft tier probabilities
    are hardened ([z >= 0.5]) and the placement is re-legalized. *)

type config = {
  iterations : int;
  lr : float;
  hidden : int;  (** GCN hidden width *)
  max_move_gcells : float;  (** move bound, in GCell pitches *)
  alpha : float;  (** displacement weight *)
  beta : float;  (** overlap weight *)
  gamma : float;  (** cutsize weight *)
  delta : float;  (** congestion weight *)
  density_target : float;  (** overlap-loss density ceiling *)
  seed : int;
  freeze_z : bool;
  (** ablation switch: keep every cell on its incoming die, reducing
      DCO-3D to a purely 2D differentiable spreader (the paper's
      contribution #2 is exactly the freedom this removes) *)
  epsilon : float;
  (** thermal-penalty weight (default 0 = thermally blind).  When
      positive, every iteration re-solves the steady-state temperature
      field ({!Dco3d_thermal.Thermal}) from the current soft positions
      — frozen per-cell power, soft tier split — feeds it to the UNet
      as the 8th feature channel, and adds
      [epsilon * Losses.thermal] so hot, high-power cells move down
      the lateral temperature gradient and toward the cooler die.
      The no-progress fallback (keep the incoming placement when
      predicted congestion is flat) is disabled for thermal runs,
      where congestion may legitimately be traded for temperature. *)
}

val default_config : config
(** 60 iterations, lr 3e-3, hidden 32, max move 1.5 GCells,
    (alpha, beta, gamma, delta, epsilon) = (1, 30, 1.5, 8, 0), density
    target 0.85.  Optimization stops early once the predicted
    congestion has dropped 25 % below its starting value — a trust
    region that keeps the GNN inside the (frozen, learned) predictor's
    reliable neighbourhood. *)

type iter_stats = {
  total : float;
  disp : float;
  ovlp : float;
  cut : float;
  cong : float;
}

type report = {
  stats : iter_stats array;  (** per-iteration loss components *)
  predicted_cong_start : float;
  predicted_cong_end : float;
  cut_start : int;  (** hard cut size before optimization *)
  cut_end : int;
  mean_displacement : float;  (** um, vs the incoming placement *)
  tier_moves : int;  (** cells that changed die *)
}

val optimize :
  ?config:config ->
  predictor:Predictor.t ->
  Dco3d_place.Placement.t ->
  Dco3d_place.Placement.t * report
(** Run Algorithm 2 on a placement (not mutated); the result is
    legalized.  Deterministic in [(config.seed, predictor, input)]. *)

val resize_value : Dco3d_autodiff.Value.t -> int -> int -> Dco3d_autodiff.Value.t
(** Differentiable nearest-neighbour resize of a [[c; h; w]] value
    (Fig. 3's resolution adaptation, on the tape). *)

val normalize_features : Dco3d_autodiff.Value.t -> Dco3d_autodiff.Value.t
(** Per-channel normalization matching
    {!Dco3d_congestion.Feature_maps.normalize}, on the tape. *)

type cool_report = {
  loss_start : float;  (** thermal penalty at the incoming placement *)
  loss_end : float;  (** penalty after the last descent step *)
  solves : int;  (** steady-state solves performed (= iterations) *)
}

val cool :
  ?iterations:int ->
  ?step_gcells:float ->
  ?step_z:float ->
  Dco3d_place.Placement.t ->
  Dco3d_place.Placement.t * cool_report
(** Thermal spreading by alternating minimization on the thermal
    penalty alone: each iteration re-solves the steady-state field from
    the current soft positions ({!Dco3d_thermal.Thermal.solve}) and
    takes one gradient step of the frozen-field penalty directly on
    the cell positions and tier probabilities (no GNN in the path).
    Steps are infinity-norm normalized — the most-pushed cell moves
    [step_gcells] GCells laterally (default 0.5) and at most [step_z]
    (default 0.1) in tier probability per iteration — so the schedule
    is scale-free in design size and absolute power.  Macros do not
    move.  The result is legalized.  Deterministic in the input. *)
