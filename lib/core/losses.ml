module T = Dco3d_tensor.Tensor
module V = Dco3d_autodiff.Value
module Csr = Dco3d_graph.Csr
module Gcn = Dco3d_graph.Gcn
module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement
module Fp = Dco3d_place.Floorplan

let congestion c0 c1 =
  let zeros v = T.zeros (V.shape v) in
  V.scale 0.5
    (V.add (V.rmse_frobenius c0 (zeros c0)) (V.rmse_frobenius c1 (zeros c1)))

let cutsize ~adj z =
  let n = V.numel z in
  if Csr.nnz adj = 0 then V.scalar 0.
  else begin
    let z2 = V.reshape z [| n; 1 |] in
    let az = Gcn.spmm adj z2 in
    (* scalar building blocks *)
    let zaz = V.dot (V.reshape z2 [| n |]) (V.reshape az [| n |]) in
    let sum_az = V.sum az in
    let total = T.scalar (Array.fold_left ( +. ) 0. (Csr.row_sums adj)) in
    (* cut = 1'Az - z'Az ; deg_T = z'Az ; deg_B = total - 2 1'Az + z'Az *)
    let cut = V.sub sum_az zaz in
    let deg_t = zaz in
    let deg_b = V.add (V.sub (V.const total) (V.scale 2. sum_az)) zaz in
    let eps = 1e-6 in
    V.add
      (V.div cut (V.add_scalar eps deg_t))
      (V.div cut (V.add_scalar eps deg_b))
  end

let overlap ?(target = 0.85) f_bottom f_top =
  let pen f =
    let d = V.slice_channels f 0 1 in
    V.mean (V.sqr (V.relu (V.add_scalar (-.target) d)))
  in
  V.add (pen f_bottom) (pen f_top)

let displacement ~x ~y ~x0 ~y0 =
  let dx = V.sub x (V.const x0) and dy = V.sub y (V.const y0) in
  let n = float_of_int (max 1 (V.numel x)) in
  V.scale (1. /. n) (V.add (V.dot dx dx) (V.dot dy dy))

(* Thermal penalty (the TaiWei-style coupling): with the solved
   temperature-rise field held frozen, each movable cell pays its power
   times the temperature it sits on,

     L_th = (1/n) sum_c  p_c [ (1 - z_c) T_bot(x_c, y_c)
                             + z_c       T_top(x_c, y_c) ]

   with [T] bilinearly interpolated.  Gradients push a hot cell
   down-gradient laterally (d T / d x) and toward the cooler tier
   (d / d z = p_c (T_top - T_bot)): hot cells repel across tiers.
   The field itself is NOT differentiated — the loop re-solves it from
   the updated positions (Gauss–Seidel-style alternation), which keeps
   the backward pass exact for the frozen field and avoids
   differentiating through the CG solve. *)
let thermal ~grid ~cell_mw ~placement ~nx ~ny ~x ~y ~z =
  let p = placement in
  let nl = p.Pl.nl in
  let fp = p.Pl.fp in
  let n = Nl.n_cells nl in
  if T.rank grid <> 3 || T.dim grid 0 <> 2 || T.dim grid 1 <> ny
     || T.dim grid 2 <> nx
  then invalid_arg "Losses.thermal: grid must be [2; ny; nx]";
  if Array.length cell_mw <> n then
    invalid_arg "Losses.thermal: cell_mw must have n_cells entries";
  let die_w = fp.Fp.width and die_h = fp.Fp.height in
  let bw = die_w /. float_of_int nx and bh = die_h /. float_of_int ny in
  let xs = V.data x and ys = V.data y and zs = V.data z in
  (* normalize by the movable power so the loss is the power-weighted
     mean of T^2/2 — O(K^2) regardless of design size or absolute power,
     which keeps epsilon on the same footing as the other loss weights
     (raw mW/n weights put the gradient orders of magnitude below the
     congestion and displacement terms) *)
  let movable_mw = ref 0. in
  for c = 0 to n - 1 do
    if not (Nl.is_macro nl c) then movable_mw := !movable_mw +. cell_mw.(c)
  done;
  let inv_p = 1. /. Float.max 1e-12 !movable_mw in
  let gx_arr = T.zeros [| n |] in
  let gy_arr = T.zeros [| n |] in
  let gz_arr = T.zeros [| n |] in
  let total = ref 0. in
  for c = 0 to n - 1 do
    if not (Nl.is_macro nl c) then begin
      let px = Float.max 0. (Float.min (die_w -. 1e-9) (T.get_flat xs c)) in
      let py = Float.max 0. (Float.min (die_h -. 1e-9) (T.get_flat ys c)) in
      let zc = T.get_flat zs c in
      (* bilinear taps at the cell center (same tent as the soft maps) *)
      let u = (px /. bw) -. 0.5 and v = (py /. bh) -. 0.5 in
      let i0 = int_of_float (floor u) and j0 = int_of_float (floor v) in
      let fu = u -. float_of_int i0 and fv = v -. float_of_int j0 in
      let cl_x i = max 0 (min (nx - 1) i) in
      let cl_y j = max 0 (min (ny - 1) j) in
      let taps =
        [|
          (cl_y j0, cl_x i0, (1. -. fu) *. (1. -. fv),
           -.(1. -. fv) /. bw, -.(1. -. fu) /. bh);
          (cl_y j0, cl_x (i0 + 1), fu *. (1. -. fv),
           (1. -. fv) /. bw, -.fu /. bh);
          (cl_y (j0 + 1), cl_x i0, (1. -. fu) *. fv,
           -.fv /. bw, (1. -. fu) /. bh);
          (cl_y (j0 + 1), cl_x (i0 + 1), fu *. fv, fv /. bw, fu /. bh);
        |]
      in
      let t0 = ref 0. and t1 = ref 0. in
      let dt0x = ref 0. and dt0y = ref 0. in
      let dt1x = ref 0. and dt1y = ref 0. in
      Array.iter
        (fun (gy, gx, phi, dpx, dpy) ->
          let v0 = T.get3 grid 0 gy gx and v1 = T.get3 grid 1 gy gx in
          t0 := !t0 +. (phi *. v0);
          t1 := !t1 +. (phi *. v1);
          dt0x := !dt0x +. (dpx *. v0);
          dt0y := !dt0y +. (dpy *. v0);
          dt1x := !dt1x +. (dpx *. v1);
          dt1y := !dt1y +. (dpy *. v1))
        taps;
      let w = cell_mw.(c) *. inv_p in
      (* quadratic in the local rise: the force on a cell scales with
         how hot its bin already is, so the hottest bins shed power
         first (a linear term pulls as hard on mildly-warm cells as on
         the peak and barely moves the maximum) *)
      let sq v = 0.5 *. v *. v in
      total := !total +. (w *. (((1. -. zc) *. sq !t0) +. (zc *. sq !t1)));
      T.set_flat gx_arr c
        (w *. (((1. -. zc) *. !t0 *. !dt0x) +. (zc *. !t1 *. !dt1x)));
      T.set_flat gy_arr c
        (w *. (((1. -. zc) *. !t0 *. !dt0y) +. (zc *. !t1 *. !dt1y)));
      T.set_flat gz_arr c (w *. (sq !t1 -. sq !t0))
    end
  done;
  V.custom ~data:(T.scalar !total) ~parents:[ x; y; z ]
    ~backward:(fun g ->
      let gs = T.get_flat g 0 in
      [
        Some (T.scale gs gx_arr);
        Some (T.scale gs gy_arr);
        Some (T.scale gs gz_arr);
      ])
