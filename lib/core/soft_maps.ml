module T = Dco3d_tensor.Tensor
module V = Dco3d_autodiff.Value
module Nl = Dco3d_netlist.Netlist
module Pl = Dco3d_place.Placement
module Fp = Dco3d_place.Floorplan

(* channel layout inside the fused [16; ny; nx] tensor *)
let ch_density = 0
let ch_pins = 1
let ch_rudy2d = 2
let ch_rudy3d = 3
let ch_pinrudy2d = 4
let ch_pinrudy3d = 5
let ch_macro = 6
let ch_thermal = 7
let n_ch = 8

let min_span = 0.10

let hard_assignment z =
  Array.init (T.numel z) (fun c -> if T.get_flat z c >= 0.5 then 1 else 0)

(* Per-net cache computed in the forward pass and reused by the
   backward pass. *)
type net_cache = {
  pins : Nl.endpoint array;  (** driver first *)
  px : float array;  (** pin positions snapshot *)
  py : float array;
  wtop : float array;  (** per-pin top weight (z for cells, 0 for IOs) *)
  bbox : float * float * float * float;
  arg_xl : int;  (** index into [pins] of the extreme pins *)
  arg_xh : int;
  arg_yl : int;
  arg_yh : int;
  weight : float;  (** (1/w + 1/h), clamped *)
  p_top : float;  (** prod of wtop *)
  p_bot : float;  (** prod of (1 - wtop) *)
  loo_top : float array;  (** leave-one-out products *)
  loo_bot : float array;
}

let leave_one_out a =
  let k = Array.length a in
  let prefix = Array.make (k + 1) 1. in
  let suffix = Array.make (k + 1) 1. in
  for i = 0 to k - 1 do
    prefix.(i + 1) <- prefix.(i) *. a.(i)
  done;
  for i = k - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) *. a.(i)
  done;
  (prefix.(k), Array.init k (fun i -> prefix.(i) *. suffix.(i + 1)))

let build ?thermal ~placement ~x ~y ~z ~nx ~ny () =
  let p = placement in
  let nl = p.Pl.nl in
  let fp = p.Pl.fp in
  let n = Nl.n_cells nl in
  if V.numel x <> n || V.numel y <> n || V.numel z <> n then
    invalid_arg "Soft_maps.build: coordinate vectors must have n_cells entries";
  let die_w = fp.Fp.width and die_h = fp.Fp.height in
  let bw = die_w /. float_of_int nx and bh = die_h /. float_of_int ny in
  let bin_area = bw *. bh in
  let xt = V.data x and yt = V.data y and zt = V.data z in
  let xs = Array.init n (T.get_flat xt) in
  let ys = Array.init n (T.get_flat yt) in
  let zs = Array.init n (T.get_flat zt) in
  let out = T.zeros [| 2 * n_ch; ny; nx |] in
  let plane die ch = (((die * n_ch) + ch) * ny * nx) in
  let addp die ch gy gx v =
    let idx = plane die ch + (gy * nx) + gx in
    T.set_flat out idx (T.get_flat out idx +. v)
  in

  (* ---------- bilinear tent splat ---------- *)
  (* returns the four (gy, gx, phi, dphi_dx, dphi_dy) taps *)
  let tent px py =
    let u = (px /. bw) -. 0.5 and v = (py /. bh) -. 0.5 in
    let i0 = int_of_float (floor u) and j0 = int_of_float (floor v) in
    let fu = u -. float_of_int i0 and fv = v -. float_of_int j0 in
    let cl_x i = max 0 (min (nx - 1) i) and cl_y j = max 0 (min (ny - 1) j) in
    [|
      (cl_y j0, cl_x i0, (1. -. fu) *. (1. -. fv),
       -.(1. -. fv) /. bw, -.(1. -. fu) /. bh);
      (cl_y j0, cl_x (i0 + 1), fu *. (1. -. fv), (1. -. fv) /. bw, -.fu /. bh);
      (cl_y (j0 + 1), cl_x i0, (1. -. fu) *. fv, -.fv /. bw, (1. -. fu) /. bh);
      (cl_y (j0 + 1), cl_x (i0 + 1), fu *. fv, fv /. bw, fu /. bh);
    |]
  in
  let clamp_x v = Float.max 0. (Float.min (die_w -. 1e-9) v) in
  let clamp_y v = Float.max 0. (Float.min (die_h -. 1e-9) v) in

  (* ---------- cell density + macro blockage ---------- *)
  for c = 0 to n - 1 do
    let area = Nl.cell_area nl c in
    if Nl.is_macro nl c then begin
      (* constant hard blockage on the macro's own tier *)
      let die = p.Pl.tier.(c) in
      let m = nl.Nl.masters.(c) in
      let w = m.Dco3d_netlist.Cell_lib.width in
      let h = m.Dco3d_netlist.Cell_lib.height in
      let x0 = xs.(c) -. (w /. 2.) and x1 = xs.(c) +. (w /. 2.) in
      let y0 = ys.(c) -. (h /. 2.) and y1 = ys.(c) +. (h /. 2.) in
      let gx0 = max 0 (int_of_float (x0 /. bw)) in
      let gx1 = min (nx - 1) (int_of_float (x1 /. bw)) in
      let gy0 = max 0 (int_of_float (y0 /. bh)) in
      let gy1 = min (ny - 1) (int_of_float (y1 /. bh)) in
      for gy = gy0 to gy1 do
        for gx = gx0 to gx1 do
          let ox = Float.max 0. (Float.min x1 (float_of_int (gx + 1) *. bw)
                                 -. Float.max x0 (float_of_int gx *. bw)) in
          let oy = Float.max 0. (Float.min y1 (float_of_int (gy + 1) *. bh)
                                 -. Float.max y0 (float_of_int gy *. bh)) in
          addp die ch_macro gy gx (ox *. oy /. bin_area);
          addp die ch_density gy gx (ox *. oy /. bin_area)
        done
      done
    end
    else begin
      let wt = zs.(c) in
      let taps = tent (clamp_x xs.(c)) (clamp_y ys.(c)) in
      Array.iter
        (fun (gy, gx, phi, _, _) ->
          let base = area /. bin_area *. phi in
          addp 0 ch_density gy gx (base *. (1. -. wt));
          addp 1 ch_density gy gx (base *. wt))
        taps
    end
  done;

  (* ---------- per-net quantities ---------- *)
  let signal_nets = Array.of_list (Nl.signal_nets nl) in
  let caches =
    Array.map
      (fun (net : Nl.net) ->
        let pins = Array.append [| net.Nl.driver |] net.Nl.sinks in
        let k = Array.length pins in
        let px = Array.make k 0. and py = Array.make k 0. in
        let wtop = Array.make k 0. in
        Array.iteri
          (fun i e ->
            match e with
            | Nl.Cell c ->
                px.(i) <- clamp_x xs.(c);
                py.(i) <- clamp_y ys.(c);
                wtop.(i) <- (if Nl.is_macro nl c then float_of_int p.Pl.tier.(c)
                             else zs.(c))
            | Nl.Io io ->
                px.(i) <- p.Pl.io_x.(io);
                py.(i) <- p.Pl.io_y.(io);
                wtop.(i) <- 0.)
          pins;
        let arg_xl = ref 0 and arg_xh = ref 0 and arg_yl = ref 0 and arg_yh = ref 0 in
        for i = 1 to k - 1 do
          if px.(i) < px.(!arg_xl) then arg_xl := i;
          if px.(i) > px.(!arg_xh) then arg_xh := i;
          if py.(i) < py.(!arg_yl) then arg_yl := i;
          if py.(i) > py.(!arg_yh) then arg_yh := i
        done;
        let x0 = px.(!arg_xl) and x1 = px.(!arg_xh) in
        let y0 = py.(!arg_yl) and y1 = py.(!arg_yh) in
        let w = Float.max min_span (x1 -. x0) in
        let h = Float.max min_span (y1 -. y0) in
        let weight = (1. /. w) +. (1. /. h) in
        let p_top, loo_top = leave_one_out wtop in
        let p_bot, loo_bot = leave_one_out (Array.map (fun v -> 1. -. v) wtop) in
        {
          pins; px; py; wtop;
          bbox = (x0, y0, x1, y1);
          arg_xl = !arg_xl; arg_xh = !arg_xh; arg_yl = !arg_yl; arg_yh = !arg_yh;
          weight; p_top; p_bot; loo_top; loo_bot;
        })
      signal_nets
  in

  (* RUDY tile iteration over a bbox *)
  let iter_tiles (x0, y0, x1, y1) f =
    let x1 = Float.max x1 (x0 +. min_span) and y1 = Float.max y1 (y0 +. min_span) in
    let gx0 = max 0 (min (nx - 1) (int_of_float (x0 /. bw))) in
    let gx1 = max 0 (min (nx - 1) (int_of_float (x1 /. bw))) in
    let gy0 = max 0 (min (ny - 1) (int_of_float (y0 /. bh))) in
    let gy1 = max 0 (min (ny - 1) (int_of_float (y1 /. bh))) in
    for gy = gy0 to gy1 do
      let ty0 = float_of_int gy *. bh and ty1 = float_of_int (gy + 1) *. bh in
      let oy = Float.min y1 ty1 -. Float.max y0 ty0 in
      if oy > 0. then
        for gx = gx0 to gx1 do
          let tx0 = float_of_int gx *. bw and tx1 = float_of_int (gx + 1) *. bw in
          let ox = Float.min x1 tx1 -. Float.max x0 tx0 in
          if ox > 0. then f gy gx ox oy
        done
    done
  in

  Array.iter
    (fun nc ->
      let p3d = Float.max 0. (1. -. nc.p_top -. nc.p_bot) in
      (* RUDY channels *)
      iter_tiles nc.bbox (fun gy gx ox oy ->
          let s = ox *. oy /. bin_area in
          addp 0 ch_rudy2d gy gx (nc.weight *. nc.p_bot *. s);
          addp 1 ch_rudy2d gy gx (nc.weight *. nc.p_top *. s);
          let v3 = 0.5 *. nc.weight *. p3d *. s in
          addp 0 ch_rudy3d gy gx v3;
          addp 1 ch_rudy3d gy gx v3);
      (* PinRUDY channels: tent splat at each pin *)
      Array.iteri
        (fun i _ ->
          let taps = tent nc.px.(i) nc.py.(i) in
          let wt = nc.wtop.(i) in
          Array.iter
            (fun (gy, gx, phi, _, _) ->
              addp 0 ch_pinrudy2d gy gx (nc.weight *. nc.p_bot *. (1. -. wt) *. phi);
              addp 1 ch_pinrudy2d gy gx (nc.weight *. nc.p_top *. wt *. phi);
              let v3 = 0.5 *. nc.weight *. p3d *. phi in
              addp 0 ch_pinrudy3d gy gx (v3 *. (1. -. wt));
              addp 1 ch_pinrudy3d gy gx (v3 *. wt))
            taps;
          (* pin density (unit weight) *)
          Array.iter
            (fun (gy, gx, phi, _, _) ->
              addp 0 ch_pins gy gx ((1. -. wt) *. phi /. bin_area);
              addp 1 ch_pins gy gx (wt *. phi /. bin_area))
            taps)
        nc.pins)
    caches;

  (* ---------- thermal plane: a frozen field ---------- *)
  (* The solved temperature-rise map enters the stack as a constant:
     the UNet sees it as an input channel, but position gradients flow
     through the dedicated Losses.thermal penalty (Gauss–Seidel-style
     alternation), not through re-solving the field on the tape. *)
  (match thermal with
  | None -> ()
  | Some tmap ->
      if T.rank tmap <> 3 || T.dim tmap 0 <> 2 || T.dim tmap 1 <> ny
         || T.dim tmap 2 <> nx
      then invalid_arg "Soft_maps.build: thermal map must be [2; ny; nx]";
      for die = 0 to 1 do
        for gy = 0 to ny - 1 do
          for gx = 0 to nx - 1 do
            addp die ch_thermal gy gx (T.get3 tmap die gy gx)
          done
        done
      done);

  (* ------------------------------------------------------------------ *)
  (* custom backward                                                     *)
  (* ------------------------------------------------------------------ *)
  let backward g =
    let gx_arr = T.zeros [| n |] and gy_arr = T.zeros [| n |] in
    let gz_arr = T.zeros [| n |] in
    let gp die ch gy gx = T.get_flat g (plane die ch + (gy * nx) + gx) in
    let bump arr c v = T.set_flat arr c (T.get_flat arr c +. v) in
    (* --- cell density --- *)
    for c = 0 to n - 1 do
      if not (Nl.is_macro nl c) then begin
        let area = Nl.cell_area nl c in
        let wt = zs.(c) in
        let taps = tent (clamp_x xs.(c)) (clamp_y ys.(c)) in
        Array.iter
          (fun (gy, gx, phi, dpx, dpy) ->
            let g0 = gp 0 ch_density gy gx and g1 = gp 1 ch_density gy gx in
            let a = area /. bin_area in
            bump gx_arr c (a *. dpx *. (((1. -. wt) *. g0) +. (wt *. g1)));
            bump gy_arr c (a *. dpy *. (((1. -. wt) *. g0) +. (wt *. g1)));
            bump gz_arr c (a *. phi *. (g1 -. g0)))
          taps
      end
    done;
    (* --- per-net channels --- *)
    Array.iter
      (fun nc ->
        let x0, y0, x1, y1 = nc.bbox in
        let w = Float.max min_span (x1 -. x0) in
        let h = Float.max min_span (y1 -. y0) in
        let p3d = Float.max 0. (1. -. nc.p_top -. nc.p_bot) in
        (* aggregate tile sums:
           sum_s[d]      = sum of S * g[d][rudy2d]
           sum_s3        = sum of S * (g0 + g1)[rudy3d]
           boundary sums = sum over tiles cut by each bbox edge *)
        let sum_s = [| 0.; 0. |] in
        let sum_s3 = ref 0. in
        let dxl = [| 0.; 0. |] and dxh = [| 0.; 0. |] in
        let dyl = [| 0.; 0. |] and dyh = [| 0.; 0. |] in
        let dxl3 = ref 0. and dxh3 = ref 0. and dyl3 = ref 0. and dyh3 = ref 0. in
        iter_tiles nc.bbox (fun gy gx ox oy ->
            let s = ox *. oy /. bin_area in
            let g0 = gp 0 ch_rudy2d gy gx and g1 = gp 1 ch_rudy2d gy gx in
            let g3 = gp 0 ch_rudy3d gy gx +. gp 1 ch_rudy3d gy gx in
            sum_s.(0) <- sum_s.(0) +. (s *. g0);
            sum_s.(1) <- sum_s.(1) +. (s *. g1);
            sum_s3 := !sum_s3 +. (s *. g3);
            (* dS/d(boundary): the tiles whose overlap is cut by the
               moving edge *)
            let tx0 = float_of_int gx *. bw and tx1 = float_of_int (gx + 1) *. bw in
            let ty0 = float_of_int gy *. bh and ty1 = float_of_int (gy + 1) *. bh in
            (* right edge x1 inside the tile: dox/dxh = 1 *)
            if x1 > tx0 && x1 <= tx1 then begin
              let d = oy /. bin_area in
              dxh.(0) <- dxh.(0) +. (d *. g0);
              dxh.(1) <- dxh.(1) +. (d *. g1);
              dxh3 := !dxh3 +. (d *. g3)
            end;
            if x0 >= tx0 && x0 < tx1 then begin
              let d = -.oy /. bin_area in
              dxl.(0) <- dxl.(0) +. (d *. g0);
              dxl.(1) <- dxl.(1) +. (d *. g1);
              dxl3 := !dxl3 +. (d *. g3)
            end;
            if y1 > ty0 && y1 <= ty1 then begin
              let d = ox /. bin_area in
              dyh.(0) <- dyh.(0) +. (d *. g0);
              dyh.(1) <- dyh.(1) +. (d *. g1);
              dyh3 := !dyh3 +. (d *. g3)
            end;
            if y0 >= ty0 && y0 < ty1 then begin
              let d = -.ox /. bin_area in
              dyl.(0) <- dyl.(0) +. (d *. g0);
              dyl.(1) <- dyl.(1) +. (d *. g1);
              dyl3 := !dyl3 +. (d *. g3)
            end);
        (* dW/d(edge) and dS/d(edge): both vanish while the span is
           clamped at min_span (moving the extreme pin then leaves the
           effective bbox unchanged) *)
        let x_live = x1 -. x0 > min_span and y_live = y1 -. y0 > min_span in
        let dw_dxh = if x_live then -1. /. (w *. w) else 0. in
        let dh_dyh = if y_live then -1. /. (h *. h) else 0. in
        if not x_live then begin
          dxl.(0) <- 0.; dxl.(1) <- 0.; dxh.(0) <- 0.; dxh.(1) <- 0.;
          dxl3 := 0.; dxh3 := 0.
        end;
        if not y_live then begin
          dyl.(0) <- 0.; dyl.(1) <- 0.; dyh.(0) <- 0.; dyh.(1) <- 0.;
          dyl3 := 0.; dyh3 := 0.
        end;
        (* Eq. 6: only the extreme pins receive position gradients *)
        let kinds d = if d = 0 then nc.p_bot else nc.p_top in
        let edge_grad ~darg ~dwd ~dsd ~dsd3 sign =
          (* total dL/d(coordinate of extreme pin):
             for each die d: kind_d * (dW * sum_s_d + W * dS_d)
             plus the 3D channel with 0.5 * p3d *)
          match nc.pins.(darg) with
          | Nl.Cell c when not (Nl.is_macro nl c) ->
              let acc = ref 0. in
              for d = 0 to 1 do
                acc :=
                  !acc
                  +. (kinds d *. ((sign *. dwd *. sum_s.(d)) +. (nc.weight *. dsd.(d))))
              done;
              acc :=
                !acc
                +. (0.5 *. p3d *. ((sign *. dwd *. !sum_s3) +. (nc.weight *. !dsd3)));
              Some (c, !acc)
          | Nl.Cell _ | Nl.Io _ -> None
        in
        (match edge_grad ~darg:nc.arg_xh ~dwd:dw_dxh ~dsd:dxh ~dsd3:dxh3 1. with
        | Some (c, v) -> bump gx_arr c v
        | None -> ());
        (match edge_grad ~darg:nc.arg_xl ~dwd:dw_dxh ~dsd:dxl ~dsd3:dxl3 (-1.) with
        | Some (c, v) -> bump gx_arr c v
        | None -> ());
        (match edge_grad ~darg:nc.arg_yh ~dwd:dh_dyh ~dsd:dyh ~dsd3:dyh3 1. with
        | Some (c, v) -> bump gy_arr c v
        | None -> ());
        (match edge_grad ~darg:nc.arg_yl ~dwd:dh_dyh ~dsd:dyl ~dsd3:dyl3 (-1.) with
        | Some (c, v) -> bump gy_arr c v
        | None -> ());
        (* z gradients through the soft tier products (RUDY channels) *)
        Array.iteri
          (fun i e ->
            match e with
            | Nl.Cell c when not (Nl.is_macro nl c) ->
                let dtop = nc.loo_top.(i) in
                let dbot = -.nc.loo_bot.(i) in
                let d3 = if p3d > 0. then -.dtop -. dbot else 0. in
                bump gz_arr c
                  (nc.weight
                  *. ((dbot *. sum_s.(0)) +. (dtop *. sum_s.(1))
                     +. (0.5 *. d3 *. !sum_s3)))
            | Nl.Cell _ | Nl.Io _ -> ())
          nc.pins;
        (* PinRUDY + pin-density backward: tent position gradients with
           the net-level scales treated as constants (sub-gradient
           choice, like Eq. 6 keeps only the dominant terms), plus the
           local z factor *)
        Array.iteri
          (fun i e ->
            match e with
            | Nl.Cell c when not (Nl.is_macro nl c) ->
                let wt = nc.wtop.(i) in
                let taps = tent nc.px.(i) nc.py.(i) in
                Array.iter
                  (fun (gy, gx, phi, dpx, dpy) ->
                    let gpin0 = gp 0 ch_pins gy gx and gpin1 = gp 1 ch_pins gy gx in
                    let gpr0 = gp 0 ch_pinrudy2d gy gx and gpr1 = gp 1 ch_pinrudy2d gy gx in
                    let g3p0 = gp 0 ch_pinrudy3d gy gx and g3p1 = gp 1 ch_pinrudy3d gy gx in
                    let w2_0 = nc.weight *. nc.p_bot and w2_1 = nc.weight *. nc.p_top in
                    let w3 = 0.5 *. nc.weight *. p3d in
                    (* coefficient of phi for each channel/die *)
                    let coef_x =
                      ((1. -. wt) *. ((gpin0 /. bin_area) +. (w2_0 *. gpr0) +. (w3 *. g3p0)))
                      +. (wt *. ((gpin1 /. bin_area) +. (w2_1 *. gpr1) +. (w3 *. g3p1)))
                    in
                    bump gx_arr c (coef_x *. dpx);
                    bump gy_arr c (coef_x *. dpy);
                    (* z: d/dz of the local (1-wt)/wt factors *)
                    bump gz_arr c
                      (phi
                      *. (-.((gpin0 /. bin_area) +. (w2_0 *. gpr0) +. (w3 *. g3p0))
                         +. ((gpin1 /. bin_area) +. (w2_1 *. gpr1) +. (w3 *. g3p1)))))
                  taps
            | Nl.Cell _ | Nl.Io _ -> ())
          nc.pins)
      caches;
    [ Some gx_arr; Some gy_arr; Some gz_arr ]
  in
  let fused = V.custom ~data:out ~parents:[ x; y; z ] ~backward in
  (V.slice_channels fused 0 n_ch, V.slice_channels fused n_ch n_ch)
