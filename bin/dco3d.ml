(* dco3d — command-line front end for the DCO-3D reproduction.

   Subcommands cover the building blocks of the flow: netlist
   generation, 3D placement, global routing, full flow runs (Pin-3D
   and its variants), predictor training (Algorithm 1) and
   differentiable congestion optimization (Algorithm 2) with TCL
   export. *)

module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Nio = Dco3d_netlist.Netlist_io
module P = Dco3d_place
module Router = Dco3d_route.Router
module Route_cache = Dco3d_route.Route_cache
module Flow = Dco3d_flow.Flow
module Thermal = Dco3d_thermal.Thermal
module Dataset = Dco3d_core.Dataset
module Predictor = Dco3d_core.Predictor
module Dco = Dco3d_core.Dco
module Tcl = Dco3d_core.Tcl_export
module Obs = Dco3d_obs.Obs
module Pool = Dco3d_parallel.Pool
module SiaUNet = Dco3d_nn.Siamese_unet
module Fm = Dco3d_congestion.Feature_maps
module Corpus = Dco3d_corpus.Corpus
module Server = Dco3d_serve.Server
module Client = Dco3d_serve.Client
module Proto = Dco3d_serve.Protocol
module Shard = Dco3d_serve.Shard
module Balance = Dco3d_serve.Balance

open Cmdliner

(* A dying client must surface as a per-connection EPIPE, not kill the
   daemon (or any other subcommand writing to a closed pipe). *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let setup verbose trace_out jobs =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning));
  Option.iter Obs.set_trace_path trace_out;
  Option.iter Pool.set_jobs jobs

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty progress output.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record stage spans and write a Chrome-trace JSON to $(docv) at            exit (open in chrome://tracing or Perfetto).  Equivalent to            setting DCO3D_TRACE=$(docv).")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel kernels and routing repair            (overrides DCO3D_JOBS; clamped to the hardware core count).")

(* every subcommand shares logging + tracing + pool setup as its first
   term *)
let setup_t = Term.(const setup $ verbose_t $ trace_t $ jobs_t)

let design_t =
  Arg.(
    value
    & opt string "DMA"
    & info [ "d"; "design" ] ~docv:"NAME"
        ~doc:"Benchmark design: DMA, AES, ECG, LDPC, VGA or Rocket.")

let scale_t =
  Arg.(
    value
    & opt float 0.2
    & info [ "s"; "scale" ] ~docv:"F"
        ~doc:
          "Netlist scale factor (1.0 = the published Table-III sizes, \
           13K-120K cells).")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let gcell_t =
  Arg.(
    value & opt int 48
    & info [ "gcell" ] ~docv:"N" ~doc:"GCell grid dimension (N x N).")

let netlist_of design scale seed =
  Gen.generate ~scale ~seed (Gen.profile design)

let route_cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "route-cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed route cache: routing results are persisted            under $(docv) keyed by netlist, GCell-binned placement and            config, and replayed bit-identically on repeat runs.  Safe            to share between concurrent processes and shards.")

(* Eta-expanded: [Route_cache.create] has a leading optional argument,
   and a bare [Option.map Route_cache.create] would freeze it at the
   first type it unifies with. *)
let route_cache_of = Option.map (fun dir -> Route_cache.create dir)

let corpus_cache_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "corpus-cache" ] ~docv:"DIR"
        ~doc:
          "On-disk PPA row store for corpus cells: evaluated            (design x config) cells are persisted under $(docv) and            replayed verbatim on repeat runs.  Safe to share between            concurrent processes and shards.")

(* ------------------------------------------------------------------ *)
(* gen                                                                  *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let run () design scale seed output =
    let nl = netlist_of design scale seed in
    (match output with
    | Some path ->
        Nio.write nl path;
        Printf.printf "wrote %s\n" path
    | None -> ());
    print_endline (Nl.stats nl);
    Printf.printf "logic depth: %d\n" (Nl.logic_depth nl)
  in
  let output_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the netlist here.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark netlist and print statistics.")
    Term.(const run $ setup_t $ design_t $ scale_t $ seed_t $ output_t)

(* ------------------------------------------------------------------ *)
(* place                                                                *)
(* ------------------------------------------------------------------ *)

let preset_t =
  Arg.(
    value
    & opt (enum [ ("default", `Default); ("congestion", `Congestion) ]) `Default
    & info [ "params" ] ~docv:"PRESET"
        ~doc:"Placement knob preset: $(b,default) (Pin-3D) or \
              $(b,congestion) (Pin-3D+Cong.).")

let place_cmd =
  let run () design scale seed gcell preset tcl_out =
    let nl = netlist_of design scale seed in
    let fp = P.Floorplan.create ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let params =
      match preset with
      | `Default -> P.Params.default
      | `Congestion -> P.Params.congestion_focused
    in
    let p = P.Placer.global_place ~seed ~params nl fp in
    Printf.printf "HPWL: %.1f um\ncut size: %d (%d signal nets)\n"
      (P.Placement.hpwl p) (P.Placement.cut_size p)
      (List.length (Nl.signal_nets nl));
    Printf.printf "tier balance: %.4f\n" (P.Placement.tier_balance p);
    (match P.Placer.legal_check p with
    | Ok () -> print_endline "legalization: OK"
    | Error e -> Printf.printf "legalization: FAILED (%s)\n" e);
    match tcl_out with
    | Some path ->
        Tcl.write p path;
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  let tcl_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcl" ] ~docv:"FILE" ~doc:"Export the placement as TCL.")
  in
  Cmd.v
    (Cmd.info "place" ~doc:"Run the 3D global placer and report quality.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ preset_t
      $ tcl_t)

(* ------------------------------------------------------------------ *)
(* route                                                                *)
(* ------------------------------------------------------------------ *)

let route_cmd =
  let run () design scale seed gcell preset warm_check =
    let nl = netlist_of design scale seed in
    let fp = P.Floorplan.create ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let params =
      match preset with
      | `Default -> P.Params.default
      | `Congestion -> P.Params.congestion_focused
    in
    let base = P.Placer.global_place ~seed ~params:P.Params.default nl fp in
    let config = Router.calibrated_config base in
    let p =
      if params == P.Params.default then base
      else P.Placer.global_place ~seed ~params nl fp
    in
    (* the warm-check gate reads the route/warm/* counters, which only
       record once observability is on *)
    if warm_check then Obs.enable ();
    let r = Router.route ~config p in
    Printf.printf
      "overflow: %d total (H %d, V %d, via %d)\noverflowed gcells: %.2f%%\n\
       routed wirelength: %.1f um (HPWL %.1f)\nrip-up iterations: %d\n"
      r.Router.overflow_total r.Router.overflow_h r.Router.overflow_v
      r.Router.overflow_via r.Router.overflow_gcell_pct r.Router.wirelength
      (P.Placement.hpwl p) r.Router.iterations_run;
    if warm_check then begin
      (* Perturb a few percent of the cells by sub-GCell distances (an
         ECO-sized delta), then route the perturbed placement twice:
         cold from scratch, and warm-started from the base result.
         The gate asserts the warm start actually reused paths, won
         >=2x wall clock, and stayed congestion-faithful (overflow and
         wirelength within 5% of the cold route). *)
      let perturbed = P.Placer.perturb ~seed ~fraction:0.02 p in
      let time_best f =
        (* best of 3: smoke runs share loaded CI hosts *)
        let best = ref infinity in
        let out = ref None in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          let r = f () in
          let ms = (Unix.gettimeofday () -. t0) *. 1000. in
          if ms < !best then best := ms;
          out := Some r
        done;
        (Option.get !out, !best)
      in
      let cold, cold_ms = time_best (fun () -> Router.route ~config perturbed) in
      let reused0 = Obs.counter_value "route/warm/reused" in
      let warm, warm_ms =
        time_best (fun () -> Router.route ~config ~warm_start:(r, p) perturbed)
      in
      let reused = Obs.counter_value "route/warm/reused" - reused0 in
      let ripped = Obs.counter_value "route/warm/ripped" in
      let speedup = cold_ms /. Float.max 1e-6 warm_ms in
      Printf.printf
        "warm-check: cold %.1f ms, warm %.1f ms (%.2fx), reused %d / ripped \
         %d\n\
         warm-check: overflow cold %d / warm %d, WL cold %.1f / warm %.1f\n\
         warm-check: warm digest %s\n"
        cold_ms warm_ms speedup reused ripped cold.Router.overflow_total
        warm.Router.overflow_total cold.Router.wirelength
        warm.Router.wirelength
        (Router.digest warm);
      let fail = ref false in
      if reused <= 0 then begin
        prerr_endline "warm-check: FAIL: warm start reused no nets";
        fail := true
      end;
      if speedup < 2.0 then begin
        Printf.eprintf
          "warm-check: FAIL: warm %.1f ms vs cold %.1f ms (%.2fx < 2.0x)\n"
          warm_ms cold_ms speedup;
        fail := true
      end;
      (* one-sided: a warm route that finds *less* overflow is fine *)
      if
        float_of_int warm.Router.overflow_total
        > 1.05 *. Float.max 1. (float_of_int cold.Router.overflow_total)
      then begin
        Printf.eprintf
          "warm-check: FAIL: warm overflow %d exceeds cold %d by more than \
           5%%\n"
          warm.Router.overflow_total cold.Router.overflow_total;
        fail := true
      end;
      let wl_dev =
        abs_float (warm.Router.wirelength -. cold.Router.wirelength)
        /. Float.max 1. cold.Router.wirelength
      in
      if wl_dev > 0.05 then begin
        Printf.eprintf
          "warm-check: FAIL: warm wirelength deviates %.1f%% from cold\n"
          (100. *. wl_dev);
        fail := true
      end;
      if !fail then exit 1;
      print_endline "warm-check: OK"
    end
  in
  let warm_check_t =
    Arg.(
      value & flag
      & info [ "warm-check" ]
          ~doc:
            "After the cold route, perturb the placement slightly,            re-route it cold and warm-started, and fail unless the warm            start reused paths, ran at least 2x faster, and matched the            cold route's overflow and wirelength within 5%.  The CI            smoke gate for incremental routing.")
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Place and globally route; report congestion.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ preset_t
      $ warm_check_t)

(* ------------------------------------------------------------------ *)
(* timing                                                               *)
(* ------------------------------------------------------------------ *)

let timing_cmd =
  let run () design scale seed gcell =
    let nl = netlist_of design scale seed in
    let fp = P.Floorplan.create ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let p = P.Placer.global_place ~seed ~params:P.Params.default nl fp in
    let config = Router.calibrated_config p in
    let r = Router.route ~config p in
    let net_is_3d nid = P.Placement.net_is_3d p nl.Nl.nets.(nid) in
    let period =
      Dco3d_sta.Sta.suggest_period nl ~net_length:r.Router.net_length
        ~net_is_3d
    in
    let cfg = Dco3d_sta.Sta.default_config ~clock_period_ps:period in
    let t =
      Dco3d_sta.Sta.analyze cfg nl ~net_length:r.Router.net_length ~net_is_3d
    in
    Printf.printf "clock period: %.1f ps

%s

%s
%s"
      period
      (Dco3d_sta.Report.timing_summary t)
      (Dco3d_sta.Report.critical_path_report nl t)
      (Dco3d_sta.Report.histogram t)
  in
  Cmd.v
    (Cmd.info "timing"
       ~doc:"Place, route and report post-route timing (critical path,              slack histogram).")
    Term.(const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t)

(* ------------------------------------------------------------------ *)
(* flow                                                                 *)
(* ------------------------------------------------------------------ *)

let flow_cmd =
  let run () design scale seed gcell which bo_iters cache_dir =
    let nl = netlist_of design scale seed in
    let ctx =
      Flow.make_context ~seed ~gcell_nx:gcell ~gcell_ny:gcell
        ?route_cache:(route_cache_of cache_dir) nl
    in
    let results =
      match which with
      | `Pin3d -> [ Flow.run_pin3d ctx ]
      | `Cong -> [ Flow.run_pin3d_cong ctx ]
      | `Bo -> [ Flow.run_pin3d_bo ~iterations:bo_iters ctx ]
      | `All ->
          [
            Flow.run_pin3d ctx;
            Flow.run_pin3d_cong ctx;
            Flow.run_pin3d_bo ~iterations:bo_iters ctx;
          ]
    in
    Printf.printf "clock period: %.1f ps\n" ctx.Flow.clock_period_ps;
    List.iter (fun r -> Format.printf "%a@." Flow.pp_result r) results
  in
  let which_t =
    Arg.(
      value
      & opt
          (enum
             [ ("pin3d", `Pin3d); ("cong", `Cong); ("bo", `Bo); ("all", `All) ])
          `Pin3d
      & info [ "variant" ] ~docv:"V"
          ~doc:"Flow variant: $(b,pin3d), $(b,cong), $(b,bo) or $(b,all).")
  in
  let bo_t =
    Arg.(
      value & opt int 12
      & info [ "bo-iterations" ] ~docv:"N" ~doc:"BO evaluation budget.")
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Run a full Pin-3D flow variant and report PPA.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ which_t
      $ bo_t $ route_cache_t)

(* ------------------------------------------------------------------ *)
(* train                                                                *)
(* ------------------------------------------------------------------ *)

let train_cmd =
  let run () design scale seed gcell n_samples epochs input_hw output cache_dir
      =
    let nl = netlist_of design scale seed in
    let route_cache = route_cache_of cache_dir in
    let ctx =
      Flow.make_context ~seed ~gcell_nx:gcell ~gcell_ny:gcell ?route_cache nl
    in
    let d =
      Dataset.build ~n_samples ~seed ?route_cache
        ~route_cfg:ctx.Flow.route_cfg nl ctx.Flow.fp
    in
    let train, test = Dataset.split ~test_fraction:0.2 ~seed d in
    let predictor, report =
      Predictor.train ~epochs ~input_hw ~seed ~train ~test ()
    in
    Array.iteri
      (fun e l ->
        Printf.printf "epoch %2d: train %.4f  test %.4f\n" (e + 1) l
          report.Predictor.test_loss.(e))
      report.Predictor.train_loss;
    let metrics = Predictor.evaluate predictor test in
    let avg f = match metrics with
      | [] -> 0.
      | _ ->
          List.fold_left (fun a m -> a +. f m) 0. metrics
          /. float_of_int (List.length metrics)
    in
    Printf.printf "test NRMSE %.3f, SSIM %.3f\n" (avg fst) (avg snd);
    Predictor.save predictor output;
    Printf.printf "saved predictor to %s\n" output
  in
  let samples_t =
    Arg.(
      value & opt int 24
      & info [ "samples" ] ~docv:"N" ~doc:"Layouts in the dataset.")
  in
  let epochs_t =
    Arg.(value & opt int 12 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")
  in
  let hw_t =
    Arg.(
      value & opt int 32
      & info [ "input-hw" ] ~docv:"N" ~doc:"Network resolution (paper: 224).")
  in
  let out_t =
    Arg.(
      value
      & opt string "predictor.bin"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to save the model.")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Build a congestion dataset and train the Siamese UNet \
             (Algorithm 1).")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ samples_t
      $ epochs_t $ hw_t $ out_t $ route_cache_t)

(* ------------------------------------------------------------------ *)
(* optimize (Algorithm 2, end to end)                                   *)
(* ------------------------------------------------------------------ *)

let optimize_cmd =
  let run () design scale seed gcell n_samples epochs iterations tcl_out
      cache_dir =
    let nl = netlist_of design scale seed in
    let route_cache = route_cache_of cache_dir in
    let ctx =
      Flow.make_context ~seed ~gcell_nx:gcell ~gcell_ny:gcell ?route_cache nl
    in
    let d =
      Dataset.build ~n_samples ~seed ?route_cache
        ~route_cfg:ctx.Flow.route_cfg nl ctx.Flow.fp
    in
    let train, test = Dataset.split ~test_fraction:0.2 ~seed d in
    let predictor, _ = Predictor.train ~epochs ~seed ~train ~test () in
    let pin3d = Flow.run_pin3d ctx in
    let config = { Dco.default_config with Dco.iterations; seed } in
    let optimized, report = Dco.optimize ~config ~predictor pin3d.Flow.placement in
    let dco = Flow.run_with_placement ctx ~name:"DCO-3D" optimized in
    Printf.printf "clock period: %.1f ps\n" ctx.Flow.clock_period_ps;
    Format.printf "%a@.%a@." Flow.pp_result pin3d Flow.pp_result dco;
    Printf.printf
      "DCO: predicted congestion %.4f -> %.4f, cut %d -> %d, %d tier moves, \
       mean displacement %.3f um\n"
      report.Dco.predicted_cong_start report.Dco.predicted_cong_end
      report.Dco.cut_start report.Dco.cut_end report.Dco.tier_moves
      report.Dco.mean_displacement;
    match tcl_out with
    | Some path ->
        Tcl.write ~only_moved_from:pin3d.Flow.placement optimized path;
        Printf.printf "wrote spreading constraints to %s\n" path
    | None -> ()
  in
  let samples_t =
    Arg.(
      value & opt int 16
      & info [ "samples" ] ~docv:"N" ~doc:"Dataset layouts to generate.")
  in
  let epochs_t =
    Arg.(value & opt int 10 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")
  in
  let iters_t =
    Arg.(
      value & opt int 60
      & info [ "iterations" ] ~docv:"N" ~doc:"Algorithm-2 gradient steps.")
  in
  let tcl_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcl" ] ~docv:"FILE"
          ~doc:"Export the cell-spreading decisions as TCL constraints.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Full DCO-3D: train the predictor, optimize the placement \
             (Algorithm 2), finish the flow, compare against Pin-3D.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ samples_t
      $ epochs_t $ iters_t $ tcl_t $ route_cache_t)

(* ------------------------------------------------------------------ *)
(* serve / client                                                       *)
(* ------------------------------------------------------------------ *)

let socket_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default dco3d.sock unless --port            is given).")

let port_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N"
        ~doc:"Listen on (or connect to) TCP 127.0.0.1:$(docv) instead of            a Unix-domain socket.  0 picks a free port.")

let address_of socket port =
  match (socket, port) with
  | Some _, Some _ ->
      prerr_endline "dco3d: --socket and --port are mutually exclusive";
      exit 2
  | _, Some p -> Server.Tcp ("127.0.0.1", p)
  | Some s, None -> Server.Unix_path s
  | None, None -> Server.Unix_path "dco3d.sock"

let pp_address = function
  | Server.Unix_path p -> Printf.sprintf "unix:%s" p
  | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* A model file on disk is either a float32 predictor ("DCO3D-PRED…")
   or a pre-quantized one ("DCO3D-QPRED…"); sniff the magic so every
   subcommand accepts both without a format flag. *)
let sniff_quantized path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let want = "DCO3D-QPRED" in
      let n = String.length want in
      try really_input_string ic n = want with End_of_file -> false)

let load_any_model path =
  if sniff_quantized path then Predictor.load_quantized path
  else Predictor.load path

let untrained_predictor ~seed ~input_hw =
  let net =
    SiaUNet.create (Dco3d_tensor.Rng.create seed)
      { SiaUNet.default_config with SiaUNet.base_channels = 8 }
  in
  { Predictor.net; input_hw; label_scale = 1.0 }

let numeric_t =
  let numeric_conv = Arg.enum [ ("f32", `F32); ("i8", `I8) ] in
  Arg.(
    value & opt numeric_conv `F32
    & info [ "numeric" ] ~docv:"PATH"
        ~doc:
          "Inference numeric path: $(b,f32) (reference) or $(b,i8)            (quantized engine; weights are quantized at startup unless            the model file is already quantized).")

(* ------------------------------------------------------------------ *)
(* thermal                                                              *)
(* ------------------------------------------------------------------ *)

let thermal_cmd =
  let run () design scale seed gcell epsilon iterations check =
    let nl = netlist_of design scale seed in
    let ctx = Flow.make_context ~seed ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let base = P.Placer.global_place ~seed ~params:P.Params.default nl ctx.Flow.fp in
    let solve p = Thermal.solve_placement p in
    (* power-weighted mean = the temperature the average milliwatt sees;
       tracks the penalty's objective more directly than the grid mean *)
    let weighted_c p (r : Thermal.result) =
      let module T = Dco3d_tensor.Tensor in
      let pw = Thermal.placement_power p in
      let dens =
        Thermal.power_density p ~power:pw ~nx:(T.dim r.Thermal.grid 2)
          ~ny:(T.dim r.Thermal.grid 1)
      in
      let num = ref 0. and den = ref 0. in
      for i = 0 to T.numel dens - 1 do
        num := !num +. (T.get_flat dens i *. T.get_flat r.Thermal.grid i);
        den := !den +. T.get_flat dens i
      done;
      !num /. Float.max 1e-12 !den
    in
    let tier_peak (r : Thermal.result) tier =
      let module T = Dco3d_tensor.Tensor in
      let g = r.Thermal.grid in
      let peak = ref neg_infinity in
      for y = 0 to T.dim g 1 - 1 do
        for x = 0 to T.dim g 2 - 1 do
          if T.get3 g tier y x > !peak then peak := T.get3 g tier y x
        done
      done;
      !peak
    in
    let report tag p (r : Thermal.result) =
      let ovf = (Router.route ~config:ctx.Flow.route_cfg p).Router.overflow_total in
      Printf.printf
        "%-12s peak %6.2f C (T0 %6.2f, T1 %6.2f)  avg %6.2f C  weighted \
         %6.2f C  overflow %6d  (CG %s, %d iters)\n%!"
        tag r.Thermal.peak_c (tier_peak r 0) (tier_peak r 1) r.Thermal.avg_c
        (weighted_c p r) ovf
        (Dco3d_tensor.Linalg.string_of_cg_status r.Thermal.cg_status)
        r.Thermal.cg_iters;
      ovf
    in
    if not check then begin
      let r = solve base in
      ignore (report "baseline" base r);
      (* per-tier summary of the map itself *)
      let t = r.Thermal.grid in
      let ny = (Dco3d_tensor.Tensor.shape t).(1)
      and nx = (Dco3d_tensor.Tensor.shape t).(2) in
      for tier = 0 to 1 do
        let peak = ref neg_infinity and acc = ref 0. in
        for y = 0 to ny - 1 do
          for x = 0 to nx - 1 do
            let v = Dco3d_tensor.Tensor.get3 t tier y x in
            if v > !peak then peak := v;
            acc := !acc +. v
          done
        done;
        Printf.printf "  tier %d: peak %6.2f C, avg %6.2f C\n" tier !peak
          (!acc /. float_of_int (nx * ny))
      done
    end
    else begin
      (* smoke gate: the thermal penalty must lower peak temperature
         without giving up routability (overflow within 5%).  Start
         from a deliberately hotspotted placement — every cell pulled
         toward the die center — so there is a real peak to burn down;
         the calibrated seed placement is already density-uniform and
         its peak is legalization noise, not a hotspot. *)
      let start = P.Placement.copy base in
      let cx = ctx.Flow.fp.P.Floorplan.width /. 2.
      and cy = ctx.Flow.fp.P.Floorplan.height /. 2. in
      for c = 0 to Nl.n_cells nl - 1 do
        if not (Nl.is_macro nl c) then begin
          start.P.Placement.x.(c) <-
            cx +. (0.35 *. (start.P.Placement.x.(c) -. cx));
          start.P.Placement.y.(c) <-
            cy +. (0.35 *. (start.P.Placement.y.(c) -. cy))
        end
      done;
      (* deliberately NOT legalized: row legalization is a density
         flattener and would erase the hotspot before the penalty sees
         it.  The no-penalty baseline takes the same finishing path as
         the penalty run (legalize, route) minus the descent. *)
      let baseline = P.Placement.copy start in
      P.Placer.legalize baseline;
      let cooled, cool_rep = Dco.cool ~iterations start in
      (* measure at a coarser grid than the optimizer's: with only a
         handful of cells per fine-grid bin, the single hottest node is
         legalization shot noise (one cell more or less is a +-25%
         power swing); quartering the resolution averages ~16 cells
         per bin so the comparison sees the hotspot, not the noise *)
      let coarse = max 4 (gcell / 2) in
      let solve p = Thermal.solve_placement ~nx:coarse ~ny:coarse p in
      let r_base = solve baseline and r_cool = solve cooled in
      let ovf_base = report "no-penalty" baseline r_base in
      let ovf_cool = report "penalty" cooled r_cool in
      let dt = r_base.Thermal.peak_c -. r_cool.Thermal.peak_c in
      Printf.printf
        "peak-temp drop: %.4f C (weighted %.4f C, penalty %.4g -> %.4g)\n%!"
        dt
        (weighted_c baseline r_base -. weighted_c cooled r_cool)
        cool_rep.Dco.loss_start cool_rep.Dco.loss_end;
      if dt <= 0. then begin
        prerr_endline "FAIL: thermal penalty did not reduce peak temperature";
        exit 1
      end;
      if cool_rep.Dco.loss_end >= cool_rep.Dco.loss_start then begin
        prerr_endline "FAIL: alternating minimization did not reduce the penalty";
        exit 1
      end;
      if float_of_int ovf_cool > 1.05 *. Float.max 1. (float_of_int ovf_base)
      then begin
        Printf.eprintf "FAIL: overflow regressed beyond 5%% (%d vs %d)\n"
          ovf_cool ovf_base;
        exit 1
      end;
      (* integration smoke for the full Algorithm-2 coupling: a few
         iterations with epsilon > 0 must run the solver in the loop
         (thermal UNet channel + frozen-field penalty) and come back
         legal.  No temperature assertion here — through the GNN the
         thermal force competes with density and congestion, so on a
         tiny synthetic design its effect is below legalization noise;
         the mechanism itself is gated by the direct descent above. *)
      let predictor = untrained_predictor ~seed ~input_hw:gcell in
      let config =
        { Dco.default_config with Dco.iterations = 4; seed; epsilon }
      in
      let integrated, _ = Dco.optimize ~config ~predictor start in
      (match P.Placer.legal_check integrated with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "FAIL: epsilon-coupled optimize not legal: %s\n" e;
          exit 1);
      print_endline "thermal smoke OK"
    end
  in
  let epsilon_t =
    Arg.(
      value & opt float 0.15
      & info [ "epsilon" ] ~docv:"F"
          ~doc:
            "Thermal-penalty weight for the $(b,--check) Algorithm-2 \
             integration smoke.")
  in
  let iters_t =
    Arg.(
      value & opt int 80
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Alternating-minimization steps for the $(b,--check) gate.")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Smoke gate: spread with and without the thermal penalty and \
             fail unless the penalty lowers peak temperature with overflow \
             within 5%.")
  in
  Cmd.v
    (Cmd.info "thermal"
       ~doc:"Steady-state thermal map of a placement; with $(b,--check), \
             verify the differentiable thermal penalty cools the design.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ epsilon_t
      $ iters_t $ check_t)

let serve_cmd =
  let run () socket port model seed input_hw queue_cap max_batch linger_ms
      cache_cap numeric shard_of shard_id spill_dir route_cache_dir corpus_dir =
    let predictor =
      match model with
      | Some path -> load_any_model path
      | None ->
          (* No trained weights: serve a freshly initialized network.
             Exercises the full daemon (batching, caching, flow jobs)
             without a training run — what the CI smoke test uses. *)
          untrained_predictor ~seed ~input_hw
    in
    let cfg =
      {
        (Server.default_config (address_of socket port)) with
        Server.queue_capacity = queue_cap;
        max_batch;
        batch_linger_ms = linger_ms;
        cache_capacity = cache_cap;
        numeric;
        spill_dir;
        route_cache_dir;
        corpus_dir;
        shard_id;
      }
    in
    match shard_of with
    | Some ctl_path -> (
        (* Shard mode: no listening socket; the balancer hands over
           connections on the control channel.  The balancer blocks
           TERM/INT/HUP for its own sigwait watcher and the mask
           survives exec — restore default delivery so a shard can
           still be killed directly (the balancer treats that as a
           crash and respawns it).  Shards inherit
           DCO3D_PROFILE from the balancer — re-point it per shard so
           their stage profiles don't clobber each other. *)
        ignore
          (Thread.sigmask Unix.SIG_UNBLOCK
             [ Sys.sigterm; Sys.sigint; Sys.sighup ]);
        (match Sys.getenv_opt "DCO3D_PROFILE" with
        | Some d when d <> "" && d <> "0" && d <> "1" && d <> "true" && d <> "stderr"
          ->
            Obs.set_profile_dest (Printf.sprintf "%s.shard%d" d shard_id)
        | _ -> ());
        Printf.printf
          "dco3d serve: shard %d attached to %s (model %s, numeric %s)\n%!"
          shard_id ctl_path
          (match model with Some p -> p | None -> "untrained")
          (Server.numeric_name numeric);
        match Shard.run ~ctl_path cfg predictor with
        | Shard.Drained ->
            Printf.printf "dco3d serve: shard %d drained and stopped\n%!"
              shard_id
        | Shard.Balancer_gone ->
            Printf.printf
              "dco3d serve: shard %d balancer gone; drained and stopped\n%!"
              shard_id)
    | None ->
        (* Block the shutdown signals BEFORE the server threads spawn
           (they inherit the mask), then sigwait in a watcher thread.
           A Sys.Signal_handle only runs when some thread executes
           OCaml code, and an idle daemon has every thread parked in C
           (select / join / condition wait) — the handler would never
           fire.  The watcher is a real thread, so request_stop's
           self-pipe poke is delivered immediately. *)
        let stop_sigs = [ Sys.sigterm; Sys.sigint ] in
        ignore (Thread.sigmask Unix.SIG_BLOCK stop_sigs);
        let srv = Server.start cfg predictor in
        ignore
          (Thread.create
             (fun () ->
               let (_ : int) = Thread.wait_signal stop_sigs in
               Server.request_stop srv)
             ());
        Printf.printf "dco3d serve: listening on %s (model %s, numeric %s)\n%!"
          (pp_address (Server.bound_addr srv))
          (match model with Some p -> p | None -> "untrained")
          (Server.numeric_name numeric);
        Server.wait srv;
        print_endline "dco3d serve: drained and stopped";
        List.iter
          (fun (k, v) -> Printf.printf "  %-16s %.0f\n" k v)
          (List.filter (fun (k, _) -> k <> "uptime_s") (Server.stats srv))
  in
  let model_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Trained predictor from $(b,dco3d train).  Without it the            daemon serves an untrained network (CI smoke mode).")
  in
  let hw_t =
    Arg.(
      value & opt int 32
      & info [ "input-hw" ] ~docv:"N"
          ~doc:"Network resolution for the untrained fallback model.")
  in
  let queue_t =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Predict-queue high-water mark; beyond it requests are            refused with Overloaded.")
  in
  let batch_t =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Most requests coalesced into one forward pass.")
  in
  let linger_t =
    Arg.(
      value & opt float 2.0
      & info [ "linger-ms" ] ~docv:"MS"
          ~doc:"How long the batcher waits for companion requests.")
  in
  let cache_t =
    Arg.(
      value & opt int 128
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"LRU result-cache entries (0 disables caching).")
  in
  let shard_of_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard-of" ] ~docv:"CTL"
          ~doc:"Run as a shard of a $(b,dco3d balance) fleet: bind no            socket, register on the control socket $(docv) and serve            connections handed over it via SCM_RIGHTS.  Normally set            by the balancer, not by hand.")
  in
  let shard_id_t =
    Arg.(
      value & opt int 0
      & info [ "shard-id" ] ~docv:"N"
          ~doc:"Slot index reported in hellos and stats (shard mode).")
  in
  let spill_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:"Persist evicted result-cache entries under $(docv)            (magic+digest framed) and read through them on misses, so            a restarted daemon keeps its hot set.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent inference/flow daemon: load the model \
             once, micro-batch concurrent predict requests, cache \
             results, run flow jobs asynchronously.  SIGTERM/SIGINT \
             drain and stop.  With $(b,--shard-of) it runs as one shard \
             of a balanced fleet instead.")
    Term.(
      const run $ setup_t $ socket_t $ port_t $ model_t $ seed_t $ hw_t
      $ queue_t $ batch_t $ linger_t $ cache_t $ numeric_t $ shard_of_t
      $ shard_id_t $ spill_t $ route_cache_t $ corpus_cache_t)

(* ------------------------------------------------------------------ *)
(* balance                                                              *)
(* ------------------------------------------------------------------ *)

let balance_cmd =
  let run () socket port ctl shards numerics model seed input_hw queue_cap
      max_batch linger_ms cache_cap spill_root route_cache_dir corpus_dir =
    let addr = address_of socket port in
    let ctl_path =
      match ctl with
      | Some c -> c
      | None -> (
          match addr with
          | Server.Unix_path p -> p ^ ".ctl"
          | Server.Tcp _ -> "dco3d-balance.ctl")
    in
    (* One numeric path per shard, comma-separated; shorter lists
       repeat their last entry, so "--numerics f32,i8" with 4 shards
       means one f32 shard and three i8. *)
    let numeric_of =
      let parsed =
        String.split_on_char ',' numerics
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      List.iter
        (fun n ->
          if n <> "f32" && n <> "i8" then begin
            Printf.eprintf "dco3d balance: bad numeric %S (want f32|i8)\n" n;
            exit 2
          end)
        parsed;
      fun i ->
        match parsed with
        | [] -> "f32"
        | l -> ( try List.nth l i with _ -> List.nth l (List.length l - 1))
    in
    let argv_of i =
      let base =
        [
          Sys.executable_name;
          "serve";
          "--shard-of";
          ctl_path;
          "--shard-id";
          string_of_int i;
          "--seed";
          string_of_int seed;
          "--input-hw";
          string_of_int input_hw;
          "--queue-capacity";
          string_of_int queue_cap;
          "--max-batch";
          string_of_int max_batch;
          "--linger-ms";
          Printf.sprintf "%g" linger_ms;
          "--cache-capacity";
          string_of_int cache_cap;
          "--numeric";
          numeric_of i;
        ]
      in
      let with_model =
        match model with Some m -> base @ [ "--model"; m ] | None -> base
      in
      let with_spill =
        match spill_root with
        | Some root ->
            with_model
            @ [ "--spill-dir"; Filename.concat root (Printf.sprintf "shard-%d" i) ]
        | None -> with_model
      in
      (* ONE directory for the whole fleet (unlike the per-shard spill):
         the cache is content-addressed and written atomically, so
         shards share a routed corpus instead of each re-routing it *)
      let with_route_cache =
        match route_cache_dir with
        | Some dir -> with_spill @ [ "--route-cache"; dir ]
        | None -> with_spill
      in
      (* Also fleet-wide: the PPA store is content-addressed, so every
         shard replays from one evaluated corpus *)
      let with_corpus_cache =
        match corpus_dir with
        | Some dir -> with_route_cache @ [ "--corpus-cache"; dir ]
        | None -> with_route_cache
      in
      Array.of_list with_corpus_cache
    in
    let cfg = Balance.default_config ~address:addr ~ctl_path ~n_shards:shards in
    (* Same sigwait-watcher discipline as `dco3d serve`: an idle
       balancer has every thread parked in C, where a Sys.Signal_handle
       never runs.  Block first so the accept/ctl/health threads (and,
       via exec, the shard processes — they unblock on entry) inherit
       the mask, then dispatch from a dedicated thread.  SIGHUP is the
       rolling model swap: re-read the model file shard by shard with
       the rest of the fleet still serving. *)
    let sigs = [ Sys.sigterm; Sys.sigint; Sys.sighup ] in
    ignore (Thread.sigmask Unix.SIG_BLOCK sigs);
    let b = Balance.start cfg ~argv_of in
    ignore
      (Thread.create
         (fun () ->
           let rec watch () =
             let s = Thread.wait_signal sigs in
             if s = Sys.sighup then begin
               ignore
                 (Thread.create
                    (fun () ->
                      print_endline "dco3d balance: rolling restart";
                      if Balance.rolling_restart b then
                        print_endline "dco3d balance: rolling restart done"
                      else
                        prerr_endline "dco3d balance: rolling restart timed out")
                    ());
               watch ()
             end
             else Balance.request_stop b
           in
           watch ())
         ());
    Printf.printf "dco3d balance: listening on %s (%d shards, ctl %s)\n%!"
      (pp_address (Balance.bound_addr b))
      shards ctl_path;
    if Balance.await_live ~timeout_s:120. b shards then
      Printf.printf "dco3d balance: all %d shards live\n%!" shards
    else begin
      prerr_endline "dco3d balance: shards failed to come up";
      Balance.stop b;
      exit 1
    end;
    Balance.wait b;
    print_endline "dco3d balance: drained and stopped";
    List.iter
      (fun s ->
        Printf.printf "  shard %d: %s, %d restarts, numeric %s\n"
          s.Balance.si_idx s.Balance.si_state s.Balance.si_restarts
          s.Balance.si_numeric)
      (Balance.slots b)
  in
  let ctl_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "ctl" ] ~docv:"PATH"
          ~doc:"Unix path of the shard control socket (default:            $(b,--socket) path + \".ctl\").")
  in
  let shards_t =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N" ~doc:"Number of shard daemons to run.")
  in
  let numerics_t =
    Arg.(
      value & opt string "f32"
      & info [ "numerics" ] ~docv:"LIST"
          ~doc:"Comma-separated numeric path per shard ($(b,f32)|$(b,i8));            a shorter list repeats its last entry.  E.g.            $(b,--shards 2 --numerics f32,i8) serves both engines            behind one endpoint.")
  in
  let model_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Model file every shard serves (f32 or pre-quantized).            Without it shards serve the seeded untrained network.")
  in
  let hw_t =
    Arg.(
      value & opt int 32
      & info [ "input-hw" ] ~docv:"N"
          ~doc:"Network resolution for the untrained fallback model.")
  in
  let queue_t =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Per-shard predict-queue high-water mark.")
  in
  let batch_t =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Per-shard micro-batch size cap.")
  in
  let linger_t =
    Arg.(
      value & opt float 2.0
      & info [ "linger-ms" ] ~docv:"MS"
          ~doc:"Per-shard batcher linger.")
  in
  let cache_t =
    Arg.(
      value & opt int 128
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Per-shard LRU result-cache entries.")
  in
  let spill_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "spill-dir" ] ~docv:"DIR"
          ~doc:"Root directory for per-shard LRU spill ($(docv)/shard-N);            restarted shards warm up from it.")
  in
  Cmd.v
    (Cmd.info "balance"
       ~doc:"Run the fd-passing balancer: spawn and supervise N shard \
             daemons, route each incoming connection by model \
             fingerprint, and hand the accepted socket to its shard \
             over SCM_RIGHTS (no frame proxying).  Crashed shards are \
             restarted; SIGHUP performs a rolling, zero-downtime \
             restart; SIGTERM/SIGINT drain the fleet and stop.")
    Term.(
      const run $ setup_t $ socket_t $ port_t $ ctl_t $ shards_t $ numerics_t
      $ model_t $ seed_t $ hw_t $ queue_t $ batch_t $ linger_t $ cache_t
      $ spill_t $ route_cache_t $ corpus_cache_t)

(* ------------------------------------------------------------------ *)
(* quantize                                                             *)
(* ------------------------------------------------------------------ *)

let quantize_cmd =
  let run () model seed input_hw output report design scale gcell samples =
    let predictor =
      match model with
      | Some path -> Predictor.load path
      | None -> untrained_predictor ~seed ~input_hw
    in
    Predictor.save_quantized predictor output;
    (* Reload what was just written: the parity check below then
       covers the persisted artifact, not the in-memory compilation. *)
    let q = Predictor.load_quantized output in
    Printf.printf "quantized model written to %s\n" output;
    Printf.printf "  f32 fingerprint %s\n"
      (Predictor.fingerprint ~numeric:`F32 predictor);
    Printf.printf "  i8  fingerprint %s\n"
      (Predictor.fingerprint ~numeric:`I8 q);
    (* Golden parity on real feature stacks: place the design at a few
       seeds and compare the quantized predictions against the float32
       reference on both dies. *)
    let pairs =
      Array.init samples (fun i ->
          let s = seed + i in
          let nl = netlist_of design scale s in
          let fp = P.Floorplan.create ~gcell_nx:gcell ~gcell_ny:gcell nl in
          let p = P.Placer.global_place ~seed:s ~params:P.Params.default nl fp in
          Fm.both_dies p ~nx:gcell ~ny:gcell)
    in
    let f32 = Predictor.predict_batch ~numeric:`F32 predictor pairs in
    let i8 = Predictor.predict_batch ~numeric:`I8 q pairs in
    let rep = Dco3d_core.Parity.compare ~f32 ~i8 in
    Dco3d_core.Parity.pp stdout rep;
    print_newline ();
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Dco3d_core.Parity.to_json rep);
        output_char oc '\n';
        close_out oc;
        Printf.printf "parity report written to %s\n" path)
      report;
    match Dco3d_core.Parity.check rep with
    | Ok () -> ()
    | Error msg ->
        Printf.eprintf "dco3d quantize: parity violation: %s\n" msg;
        exit 1
  in
  let model_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"FILE"
          ~doc:"Float32 predictor from $(b,dco3d train).  Without it an            untrained network is quantized (CI smoke mode).")
  in
  let hw_t =
    Arg.(
      value & opt int 32
      & info [ "input-hw" ] ~docv:"N"
          ~doc:"Network resolution for the untrained fallback model.")
  in
  let out_t =
    Arg.(
      value
      & opt string "predictor.i8.bin"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to save the quantized model.")
  in
  let report_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the golden-parity report as one-line JSON to $(docv).")
  in
  let samples_t =
    Arg.(
      value & opt int 2
      & info [ "samples" ] ~docv:"N"
          ~doc:"Placements (consecutive seeds) used for the parity check.")
  in
  Cmd.v
    (Cmd.info "quantize"
       ~doc:"Quantize a trained predictor to the int8 inference format \
             and gate it against its own float32 golden reference \
             (non-zero exit on a parity violation).")
    Term.(
      const run $ setup_t $ model_t $ seed_t $ hw_t $ out_t $ report_t
      $ design_t $ scale_t $ gcell_t $ samples_t)

let client_cmd =
  let run () socket port action design scale seed gcell repeat timeout_ms
      route retries =
    let addr = address_of socket port in
    let c = Client.connect addr in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    (match route with
    | None -> ()
    | Some r ->
        let want =
          match r with
          | "any" -> Proto.Want_any
          | "f32" | "i8" -> Proto.Want_numeric r
          | fp -> Proto.Want_fingerprint fp
        in
        let fp, shard, num = Client.hello ~want c in
        Printf.printf "hello: shard %d (numeric %s, fingerprint %s)\n" shard
          num fp);
    match action with
    | `Ping ->
        let t0 = Unix.gettimeofday () in
        Client.ping c;
        Printf.printf "pong (%.2f ms)\n" ((Unix.gettimeofday () -. t0) *. 1000.)
    | `Stats ->
        List.iter
          (fun (k, v) -> Printf.printf "%-16s %g\n" k v)
          (Client.stats c)
    | `Predict ->
        let nl = netlist_of design scale seed in
        let fp = P.Floorplan.create ~gcell_nx:gcell ~gcell_ny:gcell nl in
        let p = P.Placer.global_place ~seed ~params:P.Params.default nl fp in
        let f_bottom, f_top = Fm.both_dies p ~nx:gcell ~ny:gcell in
        for i = 1 to repeat do
          let t0 = Unix.gettimeofday () in
          let outcome =
            if retries > 0 then
              Client.retry ~attempts:retries ~seed:(seed + i) ?timeout_ms c
                f_bottom f_top
            else Client.predict ?timeout_ms c f_bottom f_top
          in
          match outcome with
          | Client.Ok { c_bottom; c_top; cache_hit } ->
              let sum t = Array.fold_left ( +. ) 0. t.Dco3d_tensor.Tensor.data in
              Printf.printf
                "predict %d/%d: %.2f ms, cache %s, sum(bottom) %.4f, \
                 sum(top) %.4f\n"
                i repeat
                ((Unix.gettimeofday () -. t0) *. 1000.)
                (if cache_hit then "hit" else "miss")
                (sum c_bottom) (sum c_top)
          | Client.Overloaded { queue_len; capacity } ->
              Printf.printf "predict %d/%d: overloaded (%d/%d queued)\n" i
                repeat queue_len capacity
          | Client.Timed_out ->
              Printf.printf "predict %d/%d: timed out\n" i repeat
          | Client.Disconnected ->
              Printf.printf "predict %d/%d: disconnected\n" i repeat
        done
    | `Flow ->
        let spec =
          {
            Proto.fl_design = design;
            fl_scale = scale;
            fl_seed = seed;
            fl_gcell = gcell;
            fl_variant = Proto.Pin3d;
          }
        in
        let id = Client.submit_flow c spec in
        Printf.printf "job %d accepted, polling...\n%!" id;
        let s = Client.wait_flow c id in
        Printf.printf
          "%s: overflow %d, WL %.1f um, WNS %.1f ps, TNS %.1f ps, power \
           %.2f mW\n"
          s.Proto.fs_name s.Proto.fs_overflow s.Proto.fs_wirelength_um
          s.Proto.fs_wns_ps s.Proto.fs_tns_ps s.Proto.fs_power_mw
  in
  let action_t =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("ping", `Ping);
                  ("stats", `Stats);
                  ("predict", `Predict);
                  ("flow", `Flow);
                ]))
          None
      & info [] ~docv:"ACTION"
          ~doc:"$(b,ping), $(b,stats), $(b,predict) (build features for            --design locally, request congestion maps) or $(b,flow)            (submit a flow job and poll it).")
  in
  let repeat_t =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Send the predict request $(docv) times (the repeats hit            the daemon's result cache).")
  in
  let timeout_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let route_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "route" ] ~docv:"WANT"
          ~doc:"Send a $(b,Hello) first to pin the route through a            $(b,dco3d balance) front: $(b,any), $(b,f32), $(b,i8), or            a model fingerprint.")
  in
  let retry_t =
    Arg.(
      value & opt int 0
      & info [ "retry" ] ~docv:"N"
          ~doc:"Retry predicts up to $(docv) times with jittered backoff            on Overloaded/Timed_out/disconnect (0 = no retry).  Rides            through a shard crash behind a balancer.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running $(b,dco3d serve) daemon or $(b,dco3d \
             balance) fleet.")
    Term.(
      const run $ setup_t $ socket_t $ port_t $ action_t $ design_t $ scale_t
      $ seed_t $ gcell_t $ repeat_t $ timeout_t $ route_t $ retry_t)

(* ------------------------------------------------------------------ *)
(* corpus                                                               *)
(* ------------------------------------------------------------------ *)

let corpus_cmd =
  let run () socket port matrix dataset designs_arg configs_arg scale seed
      gcell util json route_cache_dir corpus_dir =
    let specs =
      let names =
        match designs_arg with
        | [] -> List.map (fun s -> s.Corpus.sp_name) Corpus.designs
        | l -> l
      in
      List.map
        (fun n ->
          match Corpus.find n with
          | s -> Corpus.reseeded seed (Corpus.scaled scale s)
          | exception Not_found ->
              Printf.eprintf
                "dco3d corpus: unknown corpus point %S (run without            --matrix to list them)\n"
                n;
              exit 2)
        names
    in
    let configs =
      let names =
        match configs_arg with
        | [] -> List.map (fun c -> c.Corpus.fc_name) Corpus.default_configs
        | l -> l
      in
      List.map
        (fun n ->
          let n = String.lowercase_ascii (String.trim n) in
          match
            List.find_opt
              (fun c -> c.Corpus.fc_name = n)
              Corpus.default_configs
          with
          | Some c -> { c with Corpus.fc_gcell = gcell; fc_util = util }
          | None ->
              Printf.eprintf
                "dco3d corpus: unknown flow config %S (want %s)\n" n
                (String.concat "|"
                   (List.map
                      (fun c -> c.Corpus.fc_name)
                      Corpus.default_configs));
              exit 2)
        names
    in
    let remote = socket <> None || port <> None in
    match (matrix, dataset) with
    | false, None ->
        (* No action: list the corpus points (cheap — no generation). *)
        List.iter
          (fun s ->
            let ov =
              String.concat ""
                [
                  (match s.Corpus.sp_seq_fraction with
                  | Some f -> Printf.sprintf "  ff %.2f" f
                  | None -> "");
                  (match s.Corpus.sp_depth with
                  | Some d -> Printf.sprintf "  depth %d" d
                  | None -> "");
                  (match s.Corpus.sp_hub_fraction with
                  | Some f -> Printf.sprintf "  hubs %.3f" f
                  | None -> "");
                  (match s.Corpus.sp_locality with
                  | Some f -> Printf.sprintf "  locality %.2f" f
                  | None -> "");
                  (match s.Corpus.sp_macros with
                  | Some m -> Printf.sprintf "  macros %d" m
                  | None -> "");
                ]
            in
            Printf.printf "%-14s base %-7s scale %-5.2f seed %d%s\n"
              s.Corpus.sp_name s.Corpus.sp_base s.Corpus.sp_scale
              s.Corpus.sp_seed ov)
          specs;
        Printf.printf
          "(%d corpus points; run the PPA matrix with --matrix)\n"
          (List.length specs)
    | true, Some _ ->
        prerr_endline "dco3d corpus: --matrix and --dataset are exclusive";
        exit 2
    | false, Some n_samples ->
        (* Corpus dataset builds — the serving tier's other corpus
           request kind.  One config (the first selected) per design. *)
        let fc = List.hd configs in
        List.iter
          (fun s ->
            let design, samples, digest =
              if remote then begin
                let c = Client.connect (address_of socket port) in
                Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
                let id =
                  Client.submit_corpus c
                    {
                      Proto.cr_spec = s;
                      cr_config = fc;
                      cr_kind = Proto.Corpus_dataset n_samples;
                    }
                in
                match Client.wait_corpus c id with
                | Proto.Corpus_dataset_built { cd_design; cd_samples; cd_digest }
                  ->
                    (cd_design, cd_samples, cd_digest)
                | Proto.Corpus_row _ ->
                    raise (Client.Error "corpus: unexpected PPA-row reply")
              end
              else
                let route_cache = route_cache_of route_cache_dir in
                let d = Corpus.build_dataset ~n_samples ?route_cache s fc in
                (s.Corpus.sp_name, n_samples, Dataset.digest d)
            in
            Printf.printf "dataset %-14s %3d samples  digest %s\n" design
              samples digest)
          specs
    | true, None ->
        let rows =
          if remote then begin
            (* One connection per design: a balancer routes a connection
               by its first frame, so per-design connections spread the
               matrix across shards via the corpus design affinity while
               keeping all of one design's cells on one shard. *)
            let addr = address_of socket port in
            let conns =
              List.map
                (fun s ->
                  let c = Client.connect addr in
                  let ids =
                    List.map
                      (fun fc ->
                        Client.submit_corpus c
                          {
                            Proto.cr_spec = s;
                            cr_config = fc;
                            cr_kind = Proto.Corpus_ppa;
                          })
                      configs
                  in
                  (c, ids))
                specs
            in
            Fun.protect
              ~finally:(fun () ->
                List.iter (fun (c, _) -> Client.close c) conns)
            @@ fun () ->
            List.concat_map
              (fun (c, ids) ->
                List.map
                  (fun id ->
                    match Client.wait_corpus c id with
                    | Proto.Corpus_row r -> r
                    | Proto.Corpus_dataset_built _ ->
                        raise
                          (Client.Error "corpus: unexpected dataset reply"))
                  ids)
              conns
          end
          else
            let store = Option.map (fun d -> Corpus.Store.create d) corpus_dir in
            let route_cache = route_cache_of route_cache_dir in
            Corpus.run_matrix ?store ?route_cache ~specs ~configs ()
        in
        Corpus.pp_matrix Format.std_formatter rows;
        Format.pp_print_flush Format.std_formatter ();
        let digest =
          Digest.to_hex
            (Digest.string
               (String.concat "," (List.map Corpus.row_digest rows)))
        in
        Printf.printf "corpus matrix: %d rows, digest %s\n"
          (List.length rows) digest;
        Option.iter
          (fun path ->
            Corpus.write_json path rows;
            Printf.printf "matrix written to %s\n" path)
          json
  in
  let matrix_t =
    Arg.(
      value & flag
      & info [ "matrix" ]
          ~doc:
            "Run the PPA matrix (designs x flow configs): the full flow            per cell, a rendered table, a matrix digest over the            per-row determinism digests, and optionally $(b,--json).")
  in
  let dataset_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "dataset" ] ~docv:"N"
          ~doc:
            "Instead of the PPA matrix, build an N-sample congestion            dataset per selected design (first selected config) and            print its content digest.")
  in
  let designs_t =
    Arg.(
      value
      & opt (list string) []
      & info [ "designs" ] ~docv:"LIST"
          ~doc:
            "Comma-separated corpus points to run (default: the whole            corpus; run without $(b,--matrix) to list them).")
  in
  let configs_t =
    Arg.(
      value
      & opt (list string) []
      & info [ "configs" ] ~docv:"LIST"
          ~doc:"Comma-separated flow configs (default: $(b,base,cong)).")
  in
  let corpus_scale_t =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F"
          ~doc:
            "Multiplier on each corpus point's native scale (smoke runs            use small values like 0.03).")
  in
  let util_t =
    Arg.(
      value & opt float 0.55
      & info [ "util" ] ~docv:"F" ~doc:"Floorplan target utilization.")
  in
  let json_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the matrix as one JSON row-object per line.")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "The generated multi-design PPA benchmark corpus: list its \
          design points, run the (design x flow-config) PPA matrix \
          locally or through a $(b,dco3d serve)/$(b,balance) fleet \
          ($(b,--socket)/$(b,--port)), or build per-design congestion \
          datasets.  Served runs are deduped in-flight and cached \
          on disk, so a fleet evaluates each cell once.")
    Term.(
      const run $ setup_t $ socket_t $ port_t $ matrix_t $ dataset_t
      $ designs_t $ configs_t $ corpus_scale_t $ seed_t $ gcell_t $ util_t
      $ json_t $ route_cache_t $ corpus_cache_t)

let main =
  Cmd.group
    (Cmd.info "dco3d" ~version:"1.0.0"
       ~doc:"Differentiable congestion optimization for 3D ICs (DAC'25 \
             reproduction).")
    [
      gen_cmd;
      place_cmd;
      route_cmd;
      timing_cmd;
      flow_cmd;
      train_cmd;
      optimize_cmd;
      thermal_cmd;
      quantize_cmd;
      corpus_cmd;
      serve_cmd;
      balance_cmd;
      client_cmd;
    ]

let () = exit (Cmd.eval main)
