(* dco3d — command-line front end for the DCO-3D reproduction.

   Subcommands cover the building blocks of the flow: netlist
   generation, 3D placement, global routing, full flow runs (Pin-3D
   and its variants), predictor training (Algorithm 1) and
   differentiable congestion optimization (Algorithm 2) with TCL
   export. *)

module Nl = Dco3d_netlist.Netlist
module Gen = Dco3d_netlist.Generator
module Nio = Dco3d_netlist.Netlist_io
module P = Dco3d_place
module Router = Dco3d_route.Router
module Flow = Dco3d_flow.Flow
module Dataset = Dco3d_core.Dataset
module Predictor = Dco3d_core.Predictor
module Dco = Dco3d_core.Dco
module Tcl = Dco3d_core.Tcl_export
module Obs = Dco3d_obs.Obs
module Pool = Dco3d_parallel.Pool

open Cmdliner

let setup verbose trace_out jobs =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning));
  Option.iter Obs.set_trace_path trace_out;
  Option.iter Pool.set_jobs jobs

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Chatty progress output.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record stage spans and write a Chrome-trace JSON to $(docv) at            exit (open in chrome://tracing or Perfetto).  Equivalent to            setting DCO3D_TRACE=$(docv).")

let jobs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel kernels and routing repair            (overrides DCO3D_JOBS; clamped to the hardware core count).")

(* every subcommand shares logging + tracing + pool setup as its first
   term *)
let setup_t = Term.(const setup $ verbose_t $ trace_t $ jobs_t)

let design_t =
  Arg.(
    value
    & opt string "DMA"
    & info [ "d"; "design" ] ~docv:"NAME"
        ~doc:"Benchmark design: DMA, AES, ECG, LDPC, VGA or Rocket.")

let scale_t =
  Arg.(
    value
    & opt float 0.2
    & info [ "s"; "scale" ] ~docv:"F"
        ~doc:
          "Netlist scale factor (1.0 = the published Table-III sizes, \
           13K-120K cells).")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let gcell_t =
  Arg.(
    value & opt int 48
    & info [ "gcell" ] ~docv:"N" ~doc:"GCell grid dimension (N x N).")

let netlist_of design scale seed =
  Gen.generate ~scale ~seed (Gen.profile design)

(* ------------------------------------------------------------------ *)
(* gen                                                                  *)
(* ------------------------------------------------------------------ *)

let gen_cmd =
  let run () design scale seed output =
    let nl = netlist_of design scale seed in
    (match output with
    | Some path ->
        Nio.write nl path;
        Printf.printf "wrote %s\n" path
    | None -> ());
    print_endline (Nl.stats nl);
    Printf.printf "logic depth: %d\n" (Nl.logic_depth nl)
  in
  let output_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the netlist here.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark netlist and print statistics.")
    Term.(const run $ setup_t $ design_t $ scale_t $ seed_t $ output_t)

(* ------------------------------------------------------------------ *)
(* place                                                                *)
(* ------------------------------------------------------------------ *)

let preset_t =
  Arg.(
    value
    & opt (enum [ ("default", `Default); ("congestion", `Congestion) ]) `Default
    & info [ "params" ] ~docv:"PRESET"
        ~doc:"Placement knob preset: $(b,default) (Pin-3D) or \
              $(b,congestion) (Pin-3D+Cong.).")

let place_cmd =
  let run () design scale seed gcell preset tcl_out =
    let nl = netlist_of design scale seed in
    let fp = P.Floorplan.create ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let params =
      match preset with
      | `Default -> P.Params.default
      | `Congestion -> P.Params.congestion_focused
    in
    let p = P.Placer.global_place ~seed ~params nl fp in
    Printf.printf "HPWL: %.1f um\ncut size: %d (%d signal nets)\n"
      (P.Placement.hpwl p) (P.Placement.cut_size p)
      (List.length (Nl.signal_nets nl));
    Printf.printf "tier balance: %.4f\n" (P.Placement.tier_balance p);
    (match P.Placer.legal_check p with
    | Ok () -> print_endline "legalization: OK"
    | Error e -> Printf.printf "legalization: FAILED (%s)\n" e);
    match tcl_out with
    | Some path ->
        Tcl.write p path;
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  let tcl_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcl" ] ~docv:"FILE" ~doc:"Export the placement as TCL.")
  in
  Cmd.v
    (Cmd.info "place" ~doc:"Run the 3D global placer and report quality.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ preset_t
      $ tcl_t)

(* ------------------------------------------------------------------ *)
(* route                                                                *)
(* ------------------------------------------------------------------ *)

let route_cmd =
  let run () design scale seed gcell preset =
    let nl = netlist_of design scale seed in
    let fp = P.Floorplan.create ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let params =
      match preset with
      | `Default -> P.Params.default
      | `Congestion -> P.Params.congestion_focused
    in
    let base = P.Placer.global_place ~seed ~params:P.Params.default nl fp in
    let config = Router.calibrated_config base in
    let p =
      if params == P.Params.default then base
      else P.Placer.global_place ~seed ~params nl fp
    in
    let r = Router.route ~config p in
    Printf.printf
      "overflow: %d total (H %d, V %d, via %d)\noverflowed gcells: %.2f%%\n\
       routed wirelength: %.1f um (HPWL %.1f)\nrip-up iterations: %d\n"
      r.Router.overflow_total r.Router.overflow_h r.Router.overflow_v
      r.Router.overflow_via r.Router.overflow_gcell_pct r.Router.wirelength
      (P.Placement.hpwl p) r.Router.iterations_run
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Place and globally route; report congestion.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ preset_t)

(* ------------------------------------------------------------------ *)
(* timing                                                               *)
(* ------------------------------------------------------------------ *)

let timing_cmd =
  let run () design scale seed gcell =
    let nl = netlist_of design scale seed in
    let fp = P.Floorplan.create ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let p = P.Placer.global_place ~seed ~params:P.Params.default nl fp in
    let config = Router.calibrated_config p in
    let r = Router.route ~config p in
    let net_is_3d nid = P.Placement.net_is_3d p nl.Nl.nets.(nid) in
    let period =
      Dco3d_sta.Sta.suggest_period nl ~net_length:r.Router.net_length
        ~net_is_3d
    in
    let cfg = Dco3d_sta.Sta.default_config ~clock_period_ps:period in
    let t =
      Dco3d_sta.Sta.analyze cfg nl ~net_length:r.Router.net_length ~net_is_3d
    in
    Printf.printf "clock period: %.1f ps

%s

%s
%s"
      period
      (Dco3d_sta.Report.timing_summary t)
      (Dco3d_sta.Report.critical_path_report nl t)
      (Dco3d_sta.Report.histogram t)
  in
  Cmd.v
    (Cmd.info "timing"
       ~doc:"Place, route and report post-route timing (critical path,              slack histogram).")
    Term.(const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t)

(* ------------------------------------------------------------------ *)
(* flow                                                                 *)
(* ------------------------------------------------------------------ *)

let flow_cmd =
  let run () design scale seed gcell which bo_iters =
    let nl = netlist_of design scale seed in
    let ctx = Flow.make_context ~seed ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let results =
      match which with
      | `Pin3d -> [ Flow.run_pin3d ctx ]
      | `Cong -> [ Flow.run_pin3d_cong ctx ]
      | `Bo -> [ Flow.run_pin3d_bo ~iterations:bo_iters ctx ]
      | `All ->
          [
            Flow.run_pin3d ctx;
            Flow.run_pin3d_cong ctx;
            Flow.run_pin3d_bo ~iterations:bo_iters ctx;
          ]
    in
    Printf.printf "clock period: %.1f ps\n" ctx.Flow.clock_period_ps;
    List.iter (fun r -> Format.printf "%a@." Flow.pp_result r) results
  in
  let which_t =
    Arg.(
      value
      & opt
          (enum
             [ ("pin3d", `Pin3d); ("cong", `Cong); ("bo", `Bo); ("all", `All) ])
          `Pin3d
      & info [ "variant" ] ~docv:"V"
          ~doc:"Flow variant: $(b,pin3d), $(b,cong), $(b,bo) or $(b,all).")
  in
  let bo_t =
    Arg.(
      value & opt int 12
      & info [ "bo-iterations" ] ~docv:"N" ~doc:"BO evaluation budget.")
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Run a full Pin-3D flow variant and report PPA.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ which_t
      $ bo_t)

(* ------------------------------------------------------------------ *)
(* train                                                                *)
(* ------------------------------------------------------------------ *)

let train_cmd =
  let run () design scale seed gcell n_samples epochs input_hw output =
    let nl = netlist_of design scale seed in
    let ctx = Flow.make_context ~seed ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let d =
      Dataset.build ~n_samples ~seed ~route_cfg:ctx.Flow.route_cfg nl
        ctx.Flow.fp
    in
    let train, test = Dataset.split ~test_fraction:0.2 ~seed d in
    let predictor, report =
      Predictor.train ~epochs ~input_hw ~seed ~train ~test ()
    in
    Array.iteri
      (fun e l ->
        Printf.printf "epoch %2d: train %.4f  test %.4f\n" (e + 1) l
          report.Predictor.test_loss.(e))
      report.Predictor.train_loss;
    let metrics = Predictor.evaluate predictor test in
    let avg f = match metrics with
      | [] -> 0.
      | _ ->
          List.fold_left (fun a m -> a +. f m) 0. metrics
          /. float_of_int (List.length metrics)
    in
    Printf.printf "test NRMSE %.3f, SSIM %.3f\n" (avg fst) (avg snd);
    Predictor.save predictor output;
    Printf.printf "saved predictor to %s\n" output
  in
  let samples_t =
    Arg.(
      value & opt int 24
      & info [ "samples" ] ~docv:"N" ~doc:"Layouts in the dataset.")
  in
  let epochs_t =
    Arg.(value & opt int 12 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")
  in
  let hw_t =
    Arg.(
      value & opt int 32
      & info [ "input-hw" ] ~docv:"N" ~doc:"Network resolution (paper: 224).")
  in
  let out_t =
    Arg.(
      value
      & opt string "predictor.bin"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to save the model.")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Build a congestion dataset and train the Siamese UNet \
             (Algorithm 1).")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ samples_t
      $ epochs_t $ hw_t $ out_t)

(* ------------------------------------------------------------------ *)
(* optimize (Algorithm 2, end to end)                                   *)
(* ------------------------------------------------------------------ *)

let optimize_cmd =
  let run () design scale seed gcell n_samples epochs iterations tcl_out =
    let nl = netlist_of design scale seed in
    let ctx = Flow.make_context ~seed ~gcell_nx:gcell ~gcell_ny:gcell nl in
    let d =
      Dataset.build ~n_samples ~seed ~route_cfg:ctx.Flow.route_cfg nl
        ctx.Flow.fp
    in
    let train, test = Dataset.split ~test_fraction:0.2 ~seed d in
    let predictor, _ = Predictor.train ~epochs ~seed ~train ~test () in
    let pin3d = Flow.run_pin3d ctx in
    let config = { Dco.default_config with Dco.iterations; seed } in
    let optimized, report = Dco.optimize ~config ~predictor pin3d.Flow.placement in
    let dco = Flow.run_with_placement ctx ~name:"DCO-3D" optimized in
    Printf.printf "clock period: %.1f ps\n" ctx.Flow.clock_period_ps;
    Format.printf "%a@.%a@." Flow.pp_result pin3d Flow.pp_result dco;
    Printf.printf
      "DCO: predicted congestion %.4f -> %.4f, cut %d -> %d, %d tier moves, \
       mean displacement %.3f um\n"
      report.Dco.predicted_cong_start report.Dco.predicted_cong_end
      report.Dco.cut_start report.Dco.cut_end report.Dco.tier_moves
      report.Dco.mean_displacement;
    match tcl_out with
    | Some path ->
        Tcl.write ~only_moved_from:pin3d.Flow.placement optimized path;
        Printf.printf "wrote spreading constraints to %s\n" path
    | None -> ()
  in
  let samples_t =
    Arg.(
      value & opt int 16
      & info [ "samples" ] ~docv:"N" ~doc:"Dataset layouts to generate.")
  in
  let epochs_t =
    Arg.(value & opt int 10 & info [ "epochs" ] ~docv:"N" ~doc:"Training epochs.")
  in
  let iters_t =
    Arg.(
      value & opt int 60
      & info [ "iterations" ] ~docv:"N" ~doc:"Algorithm-2 gradient steps.")
  in
  let tcl_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcl" ] ~docv:"FILE"
          ~doc:"Export the cell-spreading decisions as TCL constraints.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Full DCO-3D: train the predictor, optimize the placement \
             (Algorithm 2), finish the flow, compare against Pin-3D.")
    Term.(
      const run $ setup_t $ design_t $ scale_t $ seed_t $ gcell_t $ samples_t
      $ epochs_t $ iters_t $ tcl_t)

let main =
  Cmd.group
    (Cmd.info "dco3d" ~version:"1.0.0"
       ~doc:"Differentiable congestion optimization for 3D ICs (DAC'25 \
             reproduction).")
    [ gen_cmd; place_cmd; route_cmd; timing_cmd; flow_cmd; train_cmd; optimize_cmd ]

let () = exit (Cmd.eval main)
